// Tests for the multi-tenant policy layer (src/tenant): the registry
// (namespaces, placement salts, quota accounting), the fair-share wire
// scheduler's band/lane arbitration, runtime-level quota enforcement under
// both breach policies, per-(core, tenant) retry budgets, per-tenant fabric
// metrics, the hotness auto-migrator's convergence, and a multi-seed
// quota-under-chaos soak.
//
// Failures print the seed; `DILOS_CHAOS_SEED_BASE=<seed>` replays the exact
// fault schedule (same contract as test_chaos.cc).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/dilos/runtime.h"
#include "src/memnode/fault_injector.h"
#include "src/recovery/migration.h"
#include "src/tenant/wire_sched.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

TenantSpec Spec(const char* name, uint32_t weight, uint64_t quota,
                QuotaPolicy policy = QuotaPolicy::kHardReject) {
  TenantSpec s;
  s.name = name;
  s.weight = weight;
  s.quota_pages = quota;
  s.policy = policy;
  return s;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, (region + p) ^ 0xD15C0);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != ((region + p) ^ 0xD15C0)) {
      ++errors;
    }
  }
  return errors;
}

void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 50) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

void DriveMs(DilosRuntime& rt, uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

// -- Registry: namespaces, salts, charges -------------------------------------

TEST(TenantRegistry, RegisterRetireAndCapacityCap) {
  TenantRegistry reg;
  EXPECT_EQ(reg.num_tenants(), 0);
  int a = reg.Register(Spec("a", 1, 0));
  int b = reg.Register(Spec("b", 2, 100));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reg.spec(b).weight, 2u);
  EXPECT_EQ(reg.spec(b).quota_pages, 100u);
  EXPECT_FALSE(reg.retired(a));
  reg.Retire(a);
  EXPECT_TRUE(reg.retired(a));
  // A retired tenant cannot take on new ranges.
  reg.BindRange(1ULL << 30, kShardGranuleBytes, a);
  EXPECT_EQ(reg.TenantOfAddr(1ULL << 30), -1);
  // The registry refuses registrations beyond the sizing cap.
  for (int i = reg.num_tenants(); i < TenantRegistry::kMaxTenants; ++i) {
    EXPECT_GE(reg.Register(Spec("x", 1, 0)), 0);
  }
  EXPECT_EQ(reg.Register(Spec("overflow", 1, 0)), -1);
}

TEST(TenantRegistry, NamespaceBindingAndPlacementSalt) {
  TenantRegistry reg;
  int a = reg.Register(Spec("a", 1, 0));
  int b = reg.Register(Spec("b", 1, 0));
  uint64_t base_a = 1ULL << 30;
  uint64_t base_b = 2ULL << 30;
  reg.BindRange(base_a, 2 * kShardGranuleBytes, a);
  reg.BindRange(base_b, kShardGranuleBytes, b);

  EXPECT_EQ(reg.TenantOfAddr(base_a), a);
  EXPECT_EQ(reg.TenantOfAddr(base_a + 2 * kShardGranuleBytes - 1), a);
  EXPECT_EQ(reg.TenantOfAddr(base_a + 2 * kShardGranuleBytes), -1);
  EXPECT_EQ(reg.TenantOfAddr(base_b), b);
  EXPECT_EQ(reg.TenantOfAddr(0), -1);

  // Untenanted granules keep salt 0 (single-tenant placement unchanged);
  // bound granules get a per-tenant salt so placements are independent.
  EXPECT_EQ(reg.PlacementSalt(0), 0u);
  uint64_t salt_a = reg.PlacementSalt(base_a >> kShardGranuleShift);
  uint64_t salt_b = reg.PlacementSalt(base_b >> kShardGranuleShift);
  EXPECT_NE(salt_a, 0u);
  EXPECT_NE(salt_b, 0u);
  EXPECT_NE(salt_a, salt_b);
}

TEST(TenantRegistry, QuotaChargesUnchargesAndFlagsUnderflow) {
  TenantRegistry reg;
  int a = reg.Register(Spec("a", 1, 2));
  uint64_t base = 1ULL << 30;
  reg.BindRange(base, kShardGranuleBytes, a);

  // Untenanted pages always admit and are never tracked.
  EXPECT_TRUE(reg.TryCharge(0));
  EXPECT_FALSE(reg.IsCharged(0));

  EXPECT_TRUE(reg.TryCharge(base));
  EXPECT_TRUE(reg.TryCharge(base));  // Re-charging the same page is idempotent.
  EXPECT_TRUE(reg.TryCharge(base + kPageSize));
  EXPECT_EQ(reg.remote_pages(a), 2u);
  EXPECT_FALSE(reg.TryCharge(base + 2 * kPageSize)) << "third page breaches quota 2";
  EXPECT_EQ(reg.ChargeOwner(base), a);

  reg.Uncharge(base);
  EXPECT_FALSE(reg.IsCharged(base));
  EXPECT_EQ(reg.remote_pages(a), 1u);
  EXPECT_TRUE(reg.TryCharge(base + 2 * kPageSize)) << "uncharge made quota room";

  // Resident-gauge underflow is flagged for the audit, never wrapped.
  TenantInvariantView v = reg.InvariantView();
  EXPECT_EQ(v.underflows, 0u);
  reg.OnResident(base, -1);
  v = reg.InvariantView();
  EXPECT_EQ(v.underflows, 1u);
}

// -- Fair-share wire scheduler: bands and lanes --------------------------------

uint64_t SoloWireNs(uint64_t bytes) {
  CostModel cost = CostModel::Default();
  Link link(cost);
  TenantRegistry reg;
  FairLinkScheduler sched(1, &reg);
  return sched.Occupy(link, 0, QpClass::kFault, 0, 0, bytes, 1, false);
}

TEST(FairScheduler, StrictBandsDemandBypassesBulkBacklog) {
  CostModel cost = CostModel::Default();
  Link link(cost);
  TenantRegistry reg;
  FairLinkScheduler sched(1, &reg);

  // Queue a deep prefetch backlog (band 1), all issued at t=0.
  uint64_t pf_done = 0;
  for (int i = 0; i < 8; ++i) {
    pf_done = sched.Occupy(link, 0, QpClass::kPrefetch, 0, 0, kPageSize, 1, false);
  }
  // A demand fault issued mid-backlog starts at its own issue time — it does
  // not queue behind the bulk band.
  uint64_t fault_done = sched.Occupy(link, 0, QpClass::kFault, 0, 1000, kPageSize, 1, false);
  EXPECT_LT(fault_done, pf_done);
  // A maintenance op (band 2) waits behind both higher bands' frontiers.
  uint64_t maint_done =
      sched.Occupy(link, 0, QpClass::kCleaner, 0, 0, kPageSize, 1, true);
  // Writes are the other direction; re-post a band-2 read to hit the same lane.
  maint_done = sched.Occupy(link, 0, QpClass::kProbe, 0, 0, 64, 1, false);
  EXPECT_GE(maint_done, pf_done);
  EXPECT_GE(maint_done, fault_done);
  EXPECT_EQ(sched.ops(0), 1u);
  EXPECT_EQ(sched.ops(1), 8u);
  EXPECT_EQ(sched.ops(2), 2u);
}

TEST(FairScheduler, PerTenantLanesBoundVictimDelayToFairShare) {
  CostModel cost = CostModel::Default();
  Link link(cost);
  TenantRegistry reg;
  int a = reg.Register(Spec("aggressor", 1, 0));
  int b = reg.Register(Spec("victim", 1, 0));
  uint64_t base_a = 1ULL << 30;
  uint64_t base_b = 2ULL << 30;
  reg.BindRange(base_a, kShardGranuleBytes, a);
  reg.BindRange(base_b, kShardGranuleBytes, b);
  FairLinkScheduler sched(1, &reg);

  // Tenant a floods 32 demand faults at t=0: its own lane serializes them.
  uint64_t a_done = 0;
  for (int i = 0; i < 32; ++i) {
    a_done = sched.Occupy(link, 0, QpClass::kFault, base_a, 0, kPageSize, 1, false);
  }
  // Tenant b's single fault at t=0 pays at most its weighted share of the
  // contention (2x the solo wire time for equal weights), not a's backlog.
  uint64_t b_done = sched.Occupy(link, 0, QpClass::kFault, base_b, 0, kPageSize, 1, false);
  uint64_t solo = SoloWireNs(kPageSize);
  EXPECT_LE(b_done, 2 * solo + solo / 4);
  EXPECT_LT(4 * b_done, a_done);
  EXPECT_GT(sched.deferred_ns(), 0u) << "a's backlog was serialized on its lane";
}

TEST(FairScheduler, WeightsSplitContentionProportionally) {
  // Identical aggressor backlogs on two fresh schedulers; the probing tenant
  // differs only in weight. Against a weight-1 backlog a weight-3 op
  // stretches by (1+3)/3 while a weight-1 op stretches by (1+1)/1, so the
  // heavy tenant's single fault must finish strictly earlier.
  auto probe = [](uint32_t probe_weight) {
    CostModel cost = CostModel::Default();
    Link link(cost);
    TenantRegistry reg;
    int aggressor = reg.Register(Spec("aggressor", 1, 0));
    int prober = reg.Register(Spec("prober", probe_weight, 0));
    uint64_t base_a = 1ULL << 30;
    uint64_t base_p = 2ULL << 30;
    reg.BindRange(base_a, kShardGranuleBytes, aggressor);
    reg.BindRange(base_p, kShardGranuleBytes, prober);
    FairLinkScheduler sched(1, &reg);
    for (int i = 0; i < 16; ++i) {
      sched.Occupy(link, 0, QpClass::kFault, base_a, 0, kPageSize, 1, false);
    }
    return sched.Occupy(link, 0, QpClass::kFault, base_p, 0, kPageSize, 1, false);
  };
  uint64_t heavy_done = probe(3);
  uint64_t light_done = probe(1);
  EXPECT_LT(heavy_done, light_done);
  // Both still beat FIFO queueing behind the 16-op backlog.
  EXPECT_LT(light_done, 4 * SoloWireNs(kPageSize));
}

// -- Runtime: single-tenant parity, placement, quotas --------------------------

TEST(TenantRuntime, TenancyWithNoTenantsMatchesTenancyOff) {
  auto run = [](bool enabled) {
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = 1ULL << 20;
    cfg.tenants.enabled = enabled;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    const uint64_t pages = 1024;
    uint64_t region = rt.AllocRegion(pages * kPageSize);
    Populate(rt, region, pages);
    EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
    return std::make_tuple(rt.stats().major_faults, rt.stats().evictions,
                           rt.stats().writebacks, rt.clock(0).now());
  };
  EXPECT_EQ(run(false), run(true))
      << "an empty registry must leave placement and paging byte-identical";
}

TEST(TenantRuntime, PlacementNamespacesSpreadTenantsIndependently) {
  Fabric fabric(CostModel::Default(), 4);
  DilosConfig cfg;
  cfg.local_mem_bytes = 1ULL << 20;
  cfg.tenants.enabled = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int a = rt.CreateTenant(Spec("a", 1, 0));
  int b = rt.CreateTenant(Spec("b", 1, 0));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  const uint64_t pages = 8 * kPagesPerGranule;
  uint64_t ra = rt.AllocRegion(pages * kPageSize, a);
  uint64_t rb = rt.AllocRegion(pages * kPageSize, b);
  // Regions are granule-aligned so a granule never straddles tenants.
  EXPECT_EQ(ra % kShardGranuleBytes, 0u);
  EXPECT_EQ(rb % kShardGranuleBytes, 0u);
  Populate(rt, ra, pages);
  Populate(rt, rb, pages);

  // Both tenants' granules spread over the fleet (not pinned to one node).
  std::vector<int> replicas;
  for (uint64_t base : {ra, rb}) {
    std::vector<bool> used(4, false);
    for (uint64_t g = 0; g < 8; ++g) {
      rt.router().ReplicaNodes(base + g * kShardGranuleBytes, &replicas);
      ASSERT_FALSE(replicas.empty());
      used[static_cast<size_t>(replicas[0])] = true;
    }
    EXPECT_GT(std::count(used.begin(), used.end(), true), 1);
  }
  EXPECT_EQ(VerifySweep(rt, ra, pages), 0u);
  EXPECT_EQ(VerifySweep(rt, rb, pages), 0u);
}

TEST(TenantRuntime, HardRejectCapsStoredPagesAndKeepsDataResident) {
  Fabric fabric;
  DilosConfig cfg;
  // Smaller than the region: real eviction pressure, so the cleaner works.
  cfg.local_mem_bytes = 128 * kPageSize;
  cfg.tenants.enabled = true;
  cfg.telemetry.check_invariants = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int t = rt.CreateTenant(Spec("capped", 1, 32, QuotaPolicy::kHardReject));
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize, t);
  Populate(rt, region, pages);

  // Drive the cleaner: it keeps trying to write dirty pages back, and every
  // attempt past the 32-page quota is refused.
  uint64_t now = rt.clock(0).now();
  for (int i = 0; i < 100; ++i) {
    now += 100'000;
    rt.page_manager().BackgroundTick(now);
  }

  EXPECT_EQ(rt.tenants()->remote_pages(t), 32u);
  EXPECT_GT(rt.tenants()->quota_rejects(t), 0u);
  EXPECT_GT(rt.stats().tenant_quota_rejects, 0u);
  // Rejected pages stay dirty and resident — nothing is lost.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  rt.FreeRegion(region, pages * kPageSize);
  rt.RetireTenant(t);  // The destructor audits: a retired tenant owns nothing.
}

TEST(TenantRuntime, ReclaimOwnColdestStaysUnderQuotaLosslessly) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 128 * kPageSize;
  cfg.tenants.enabled = true;
  cfg.telemetry.check_invariants = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int t = rt.CreateTenant(Spec("reclaimer", 1, 32, QuotaPolicy::kReclaimOwnColdest));
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize, t);
  Populate(rt, region, pages);

  uint64_t now = rt.clock(0).now();
  for (int i = 0; i < 100; ++i) {
    now += 100'000;
    rt.page_manager().BackgroundTick(now);
  }

  // The quota held the whole time by evicting the tenant's own coldest
  // remote copies; the dropped pages were re-marked dirty locally, so every
  // byte is still served correctly.
  EXPECT_LE(rt.tenants()->remote_pages(t), 32u);
  EXPECT_GT(rt.tenants()->quota_reclaims(t), 0u);
  EXPECT_GT(rt.stats().tenant_quota_reclaims, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  rt.FreeRegion(region, pages * kPageSize);
  rt.RetireTenant(t);
}

// -- Per-(core, tenant) retry budgets ------------------------------------------

TEST(TenantRetryBudget, OneTenantsRetryStormCannotDrainAnothers) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.tenants.enabled = true;
  cfg.recovery.retry_burst = 4;
  cfg.recovery.retry_refill_ns = 50 * kMs;  // Nothing refills mid-test.
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int a = rt.CreateTenant(Spec("bystander", 1, 0));
  int b = rt.CreateTenant(Spec("stormer", 1, 0));
  const uint64_t pages = 64;
  uint64_t ra = rt.AllocRegion(pages * kPageSize, a);
  uint64_t rb = rt.AllocRegion(pages * kPageSize, b);
  Populate(rt, ra, pages);
  Populate(rt, rb, pages);

  // Every (core, tenant) bucket starts full.
  EXPECT_EQ(rt.retry_tokens(0, a), 4u);
  EXPECT_EQ(rt.retry_tokens(0, b), 4u);
  EXPECT_EQ(rt.retry_tokens(0, -1), 4u);

  // Partition a node holding tenant b's pages and storm exactly those pages:
  // only b's bucket pays for the retries.
  fabric.CrashNode(1);
  std::vector<int> reps;
  bool stormed = false;
  for (uint64_t p = 0; p + 16 < pages; ++p) {
    rt.router().ReplicaNodes(rb + p * kPageSize, &reps);
    if (!reps.empty() && reps[0] == 1) {
      rt.Read<uint64_t>(rb + p * kPageSize);
      stormed = true;
      break;
    }
  }
  ASSERT_TRUE(stormed) << "no granule of tenant b homed on the crashed node";

  EXPECT_GT(rt.stats().fetch_retries, 0u);
  EXPECT_LT(rt.retry_tokens(0, b), 4u) << "the storming tenant's bucket drains";
  EXPECT_EQ(rt.retry_tokens(0, a), 4u) << "the bystander's bucket is untouched";
  EXPECT_EQ(rt.retry_tokens(0, -1), 4u) << "the untenanted bucket is untouched";

  fabric.RestoreNode(1);
  DriveMs(rt, 20);
  DriveUntilIdle(rt, 100);
}

// -- Per-tenant fabric metrics -------------------------------------------------

TEST(TenantMetrics, PerTenantCellsAndPromRowsAttributeTraffic) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * kPageSize;
  cfg.tenants.enabled = true;
  cfg.telemetry.metrics = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int t = rt.CreateTenant(Spec("prom", 1, 0));
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize, t);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);  // Misses fetch remotely.

  ASSERT_NE(rt.metrics(), nullptr);
  ASSERT_TRUE(rt.metrics()->tenant_aware());
  uint64_t serve = 0, maint = 0;
  for (int n = 0; n < 2; ++n) {
    serve += rt.metrics()->TenantServe(n, t).ops();
    maint += rt.metrics()->TenantMaint(n, t).ops();
  }
  EXPECT_GT(serve, 0u) << "demand fetches attribute to the tenant's serve cell";
  EXPECT_GT(maint, 0u) << "cleaner write-backs attribute to the maint cell";

  std::string prom = rt.metrics()->ToProm();
  EXPECT_NE(prom.find("dilos_tenant_ops_total"), std::string::npos);
  EXPECT_NE(prom.find("dilos_tenant_bytes_total"), std::string::npos);
  EXPECT_NE(prom.find("tenant=\"0\",path=\"serve\""), std::string::npos);
}

// -- Hotness auto-migrator -----------------------------------------------------

TEST(TenantHotness, SkewedLoadConvergesBelowImbalanceThreshold) {
  Fabric fabric(CostModel::Default(), 4);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.recovery.enabled = true;
  cfg.telemetry.metrics = true;
  cfg.tenants.enabled = true;
  cfg.tenants.hotness.enabled = true;
  cfg.tenants.hotness.interval_ns = 200'000;
  cfg.tenants.hotness.imbalance_ratio = 1.5;
  cfg.tenants.hotness.bytes_per_interval = 1ULL << 20;  // 4 granules/interval.
  cfg.tenants.hotness.min_interval_bytes = 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int t = rt.CreateTenant(Spec("hot", 1, 0));
  const uint64_t granules = 16;
  const uint64_t pages = granules * kPagesPerGranule;
  uint64_t region = rt.AllocRegion(pages * kPageSize, t);
  Populate(rt, region, pages);
  ASSERT_NE(rt.hotness(), nullptr);

  // Skew: read only pages of granules currently homed on one node. The
  // address set is fixed; as the monitor migrates granules away, the same
  // reads spread over the fleet and the load imbalance falls.
  std::vector<int> reps;
  std::vector<uint64_t> hot_pages;
  rt.router().ReplicaNodes(region, &reps);
  ASSERT_FALSE(reps.empty());
  const int hot_node = reps[0];
  for (uint64_t g = 0; g < granules; ++g) {
    rt.router().ReplicaNodes(region + g * kShardGranuleBytes, &reps);
    if (!reps.empty() && reps[0] == hot_node) {
      for (uint64_t p = 0; p < kPagesPerGranule; ++p) {
        hot_pages.push_back(g * kPagesPerGranule + p);
      }
    }
  }
  ASSERT_GT(hot_pages.size(), cfg.local_mem_bytes / kPageSize)
      << "hot set must overflow local memory so reads keep faulting";

  bool converged = false;
  for (int round = 0; round < 400 && !converged; ++round) {
    for (uint64_t p : hot_pages) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
    rt.DriveRecovery(200'000);
    converged = rt.stats().hotness_migrations > 0 &&
                rt.hotness()->ImbalanceRatio() < cfg.tenants.hotness.imbalance_ratio;
  }

  EXPECT_GT(rt.stats().hotness_migrations, 0u) << "the monitor must act on skew";
  EXPECT_LT(rt.hotness()->ImbalanceRatio(), cfg.tenants.hotness.imbalance_ratio)
      << "node loads must converge under the configured ratio";
  // The per-interval budget bounds how fast it may move data.
  EXPECT_LE(rt.stats().hotness_migrations,
            rt.hotness()->intervals() *
                (cfg.tenants.hotness.bytes_per_interval / kShardGranuleBytes));
  DriveUntilIdle(rt, 200);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

// -- Multi-seed quota + crash soak ---------------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// One soak run: two quota-capped tenants (one hard-reject, one
// reclaim-own-coldest) churn mixed reads/writes while a node rides a crash
// window, another is transiently flaky, and wire bit flips hit everyone.
// Quotas must hold through the repair churn, no read may cross tenants or
// return wrong bytes, and the destructor audits that per-tenant gauges sum
// to the global totals with both tenants retired clean.
void QuotaCrashSoak(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 4);
  FaultPlan plan;
  plan.specs.push_back({2, FaultKind::kCrash, 1.0, 1.0, 3 * kMs, 9 * kMs});
  plan.specs.push_back({3, FaultKind::kTransient, 0.02, 1.0, 5 * kMs, 12 * kMs});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.01, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);

  DilosConfig cfg;
  cfg.local_mem_bytes = 160 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.tenants.enabled = true;
  cfg.telemetry.check_invariants = true;
  cfg.fault_seed = seed;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  int a = rt.CreateTenant(Spec("hard", 2, 80, QuotaPolicy::kHardReject));
  int b = rt.CreateTenant(Spec("soft", 1, 80, QuotaPolicy::kReclaimOwnColdest));
  const uint64_t pages = 96;
  uint64_t region[2] = {rt.AllocRegion(pages * kPageSize, a),
                        rt.AllocRegion(pages * kPageSize, b)};
  Populate(rt, region[0], pages);
  Populate(rt, region[1], pages);

  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  uint64_t ops = 0;
  while (rt.clock(0).now() < 16 * kMs && ops < 400'000) {
    int t = static_cast<int>(next() % 2);
    uint64_t p = next() % pages;
    uint64_t va = region[t] + p * kPageSize;
    if (next() % 4 == 0) {
      rt.Write<uint64_t>(va, (region[t] + p) ^ 0xD15C0);
    } else if (rt.Read<uint64_t>(va) != ((region[t] + p) ^ 0xD15C0)) {
      ++wrong_reads;
    }
    ++ops;
  }
  // Settle: fault windows over, the crashed node readmitted, repairs done.
  DriveMs(rt, 10);
  DriveUntilIdle(rt, 300);

  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed;
  EXPECT_LE(rt.tenants()->remote_pages(a), 80u) << "fault_seed=" << seed;
  EXPECT_LE(rt.tenants()->remote_pages(b), 80u) << "fault_seed=" << seed;
  EXPECT_EQ(VerifySweep(rt, region[0], pages), 0u) << "fault_seed=" << seed;
  EXPECT_EQ(VerifySweep(rt, region[1], pages), 0u) << "fault_seed=" << seed;
  // No cross-tenant page leakage: every charged page belongs to the tenant
  // whose region contains it.
  for (int t = 0; t < 2; ++t) {
    int owner = t == 0 ? a : b;
    for (uint64_t p = 0; p < pages; ++p) {
      int charged = rt.tenants()->ChargeOwner(region[t] + p * kPageSize);
      if (charged != -1 && charged != owner) {
        ADD_FAILURE() << "page of tenant " << owner << " charged to " << charged
                      << " fault_seed=" << seed;
      }
    }
  }

  // Teardown: freed and retired tenants must leave no residue — the
  // destructor's tenancy audit enforces it.
  rt.FreeRegion(region[0], pages * kPageSize);
  rt.FreeRegion(region[1], pages * kPageSize);
  rt.RetireTenant(a);
  rt.RetireTenant(b);
  EXPECT_EQ(rt.tenants()->resident_pages(a), 0u) << "fault_seed=" << seed;
  EXPECT_EQ(rt.tenants()->remote_pages(a), 0u) << "fault_seed=" << seed;
  EXPECT_EQ(rt.tenants()->resident_pages(b), 0u) << "fault_seed=" << seed;
  EXPECT_EQ(rt.tenants()->remote_pages(b), 0u) << "fault_seed=" << seed;
}

TEST(TenantChaos, QuotasHoldThrough32SeedsOfCrashAndRepair) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    QuotaCrashSoak(s);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

}  // namespace
}  // namespace dilos
