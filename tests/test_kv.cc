// Tests for the sharded far-memory KV service (src/kv): B+-tree structural
// invariants and fuzz/property checks against std::map, the statistical
// shape of the YCSB Zipfian generator, KvService routing/stats/guided
// scans, and a KV-under-chaos soak (YCSB-A burst through the fault-
// injection fabric: no acknowledged write may be lost, no scan may wedge).
//
// Chaos failures print the fault seed; replay with
// DILOS_CHAOS_SEED_BASE=<seed>.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/guides/kv_guide.h"
#include "src/kv/kv_service.h"
#include "src/memnode/fault_injector.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

std::unique_ptr<DilosRuntime> MakeRt(Fabric& fabric, uint64_t local_pages) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_pages * kPageSize;
  return std::make_unique<DilosRuntime>(fabric, cfg, std::make_unique<NullPrefetcher>());
}

// Deterministic fixed-size payload; distinct per (key, version).
std::string ValueFor(uint64_t key, uint64_t version, uint32_t size) {
  std::string v(size, '\0');
  uint64_t x = key * 0x9E3779B97F4A7C15ULL + version * 0xBF58476D1CE4E5B9ULL + 1;
  for (char& c : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    c = static_cast<char>('a' + x % 26);
  }
  return v;
}

// -- B+-tree structure ---------------------------------------------------------

TEST(BTree, SequentialInsertLookupScanDelete) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  BTreeConfig cfg;
  cfg.value_size = 32;
  cfg.inner_order = 8;  // ~30 leaves must then split interior levels too.
  FarBTree tree(*rt, cfg);

  const uint64_t n = 3000;
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_TRUE(tree.Put(k, ValueFor(k, 0, 32)));
  }
  EXPECT_EQ(tree.size(), n);
  EXPECT_GT(tree.height(), 1u) << "3000 keys must split past a single level";

  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << err;

  std::string out;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Get(k, &out)) << "key " << k;
    EXPECT_EQ(out, ValueFor(k, 0, 32)) << "key " << k;
  }
  EXPECT_FALSE(tree.Get(n + 1, &out));

  std::vector<std::pair<uint64_t, std::string>> scan;
  EXPECT_EQ(tree.Scan(0, static_cast<uint32_t>(n) + 10, &scan), n);
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_EQ(scan[k].first, k);
  }

  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_TRUE(tree.Delete(k)) << "key " << k;
  }
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.Validate(&err)) << err;
}

TEST(BTree, ReverseInsertExercisesFenceLowering) {
  // Descending inserts force every leaf's minimum (and the interior fences
  // above it) to be lowered on each insert — the lower-bound fence rule.
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  BTreeConfig cfg;
  cfg.value_size = 32;
  FarBTree tree(*rt, cfg);
  const uint64_t n = 2000;
  for (uint64_t k = n; k-- > 0;) {
    ASSERT_TRUE(tree.Put(k + 1, ValueFor(k + 1, 0, 32)));
  }
  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << err;
  std::vector<std::pair<uint64_t, std::string>> scan;
  EXPECT_EQ(tree.Scan(0, static_cast<uint32_t>(n) + 10, &scan), n);
  EXPECT_EQ(scan.front().first, 1u);
  EXPECT_EQ(scan.back().first, n);
}

TEST(BTree, MassDeleteTriggersMergesAndBorrows) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  BTreeConfig cfg;
  cfg.value_size = 64;
  FarBTree tree(*rt, cfg);
  const uint64_t n = 4000;
  for (uint64_t k = 0; k < n; ++k) {
    tree.Put(k, ValueFor(k, 0, 64));
  }
  uint64_t leaves_full = tree.num_leaves();
  // Delete everything not divisible by 16, interleaved order.
  for (uint64_t stride = 1; stride < 16; ++stride) {
    for (uint64_t k = stride; k < n; k += 16) {
      ASSERT_TRUE(tree.Delete(k)) << "key " << k;
    }
  }
  EXPECT_EQ(tree.size(), (n + 15) / 16);
  EXPECT_GT(tree.leaf_merges(), 0u) << "15/16 deleted: leaves must merge";
  EXPECT_LT(tree.num_leaves(), leaves_full / 4) << "merged leaves must be freed";
  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << err;
  std::string out;
  for (uint64_t k = 0; k < n; k += 16) {
    ASSERT_TRUE(tree.Get(k, &out)) << "survivor " << k;
    EXPECT_EQ(out, ValueFor(k, 0, 64));
  }
}

TEST(BTree, UpdateOverwritesInPlace) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 256);
  FarBTree tree(*rt);
  EXPECT_TRUE(tree.Put(7, "first"));
  EXPECT_FALSE(tree.Put(7, "second")) << "overwrite is not an insert";
  EXPECT_EQ(tree.size(), 1u);
  std::string out;
  ASSERT_TRUE(tree.Get(7, &out));
  // Fixed-size records: the payload is zero-padded to value_size.
  EXPECT_EQ(out.substr(0, 6), std::string("second"));
  EXPECT_EQ(out.size(), BTreeConfig{}.value_size);
}

// -- Fuzz / property: random interleavings vs std::map -------------------------

void BTreeFuzz(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  BTreeConfig cfg;
  cfg.value_size = 48;
  cfg.inner_order = 8;  // Low fanout: deep tree, frequent interior rebalance.
  FarBTree tree(*rt, cfg);
  std::map<uint64_t, std::string> model;
  Rng rng(seed);

  const uint64_t key_space = 6000;  // Dense enough for overwrite + delete hits.
  std::string out;
  std::vector<std::pair<uint64_t, std::string>> scan;
  for (uint64_t op = 0; op < 6000; ++op) {
    uint64_t key = rng.NextBelow(key_space);
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Put.
        std::string v = ValueFor(key, op, 48);
        bool inserted = tree.Put(key, v);
        EXPECT_EQ(inserted, model.find(key) == model.end()) << "seed=" << seed << " op=" << op;
        model[key] = v;
        break;
      }
      case 4:
      case 5:
      case 6: {  // Delete (boundary splits/merges come from the churn).
        bool removed = tree.Delete(key);
        EXPECT_EQ(removed, model.erase(key) == 1) << "seed=" << seed << " op=" << op;
        break;
      }
      case 7:
      case 8: {  // Get.
        bool found = tree.Get(key, &out);
        auto it = model.find(key);
        ASSERT_EQ(found, it != model.end()) << "seed=" << seed << " op=" << op;
        if (found) {
          EXPECT_EQ(out, it->second) << "seed=" << seed << " op=" << op;
        }
        break;
      }
      default: {  // Scan: compare a window against the model's order.
        scan.clear();
        uint32_t want = 1 + static_cast<uint32_t>(rng.NextBelow(60));
        uint32_t got = tree.Scan(key, want, &scan);
        auto it = model.lower_bound(key);
        uint32_t expect = 0;
        for (; it != model.end() && expect < want; ++it, ++expect) {
          ASSERT_LT(expect, got) << "seed=" << seed << " op=" << op;
          EXPECT_EQ(scan[expect].first, it->first) << "seed=" << seed << " op=" << op;
          EXPECT_EQ(scan[expect].second, it->second) << "seed=" << seed << " op=" << op;
        }
        EXPECT_EQ(got, expect) << "seed=" << seed << " op=" << op;
        break;
      }
    }
    if (op % 1000 == 999) {
      std::string err;
      ASSERT_TRUE(tree.Validate(&err)) << "seed=" << seed << " op=" << op << ": " << err;
    }
  }
  EXPECT_EQ(tree.size(), model.size()) << "seed=" << seed;
  std::string err;
  ASSERT_TRUE(tree.Validate(&err)) << "seed=" << seed << ": " << err;
  EXPECT_GT(tree.leaf_splits(), 0u) << "seed=" << seed;
  // Drain to empty through the rebalance paths, model in lockstep.
  while (!model.empty()) {
    uint64_t key = model.begin()->first;
    if (rng.NextBelow(2) == 0) {
      key = std::prev(model.end())->first;
    }
    EXPECT_TRUE(tree.Delete(key)) << "seed=" << seed << " drain key=" << key;
    model.erase(key);
  }
  EXPECT_EQ(tree.size(), 0u) << "seed=" << seed;
  ASSERT_TRUE(tree.Validate(&err)) << "seed=" << seed << ": " << err;
}

TEST(BTreeFuzz, MatchesStdMapAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    BTreeFuzz(seed);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

// -- Zipfian generator shape ---------------------------------------------------

TEST(Zipf, EmpiricalSkewMatchesTheory) {
  // The YCSB mixes lean on ZipfSampler for skew; check the sampled rank
  // frequencies against the closed-form distribution, not just "looks
  // skewed": p(rank r) = (1/(r+1)^theta) / zeta_n(theta).
  const uint64_t n = 1000;
  const double theta = 0.99;
  const uint64_t draws = 200'000;
  ZipfSampler zipf(n, theta, /*seed=*/7);
  std::vector<uint64_t> freq(n, 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++freq[zipf.Next()];
  }
  double zetan = 0.0;
  for (uint64_t r = 1; r <= n; ++r) {
    zetan += 1.0 / std::pow(static_cast<double>(r), theta);
  }
  for (uint64_t rank : {0ULL, 1ULL, 2ULL, 9ULL}) {
    double expect = 1.0 / std::pow(static_cast<double>(rank + 1), theta) / zetan;
    double got = static_cast<double>(freq[rank]) / static_cast<double>(draws);
    EXPECT_NEAR(got, expect, 0.25 * expect) << "rank " << rank;
  }
  // Tail mass sanity: the top 1% of keys draw far more than 1% of traffic.
  uint64_t top = 0;
  for (uint64_t r = 0; r < n / 100; ++r) {
    top += freq[r];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(draws), 0.3);
}

// -- KvService ----------------------------------------------------------------

TEST(KvService, RoutesCountsAndExposesStats) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  KvConfig cfg;
  cfg.shards = 4;
  cfg.tree.value_size = 32;
  KvService kv(*rt, cfg);

  const uint64_t n = 800;
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_TRUE(kv.Put(k, ValueFor(k, 0, 32)));
    EXPECT_EQ(kv.ShardOf(k), kv.ShardOf(k)) << "routing must be stable";
  }
  EXPECT_EQ(kv.total_keys(), n);

  // Hash partitioning: no shard is empty or hogs the keyspace.
  for (int s = 0; s < kv.shards(); ++s) {
    EXPECT_GT(kv.tree(s).size(), n / 16) << "shard " << s;
    EXPECT_LT(kv.tree(s).size(), n / 2) << "shard " << s;
  }

  std::string out;
  uint64_t found = 0;
  for (uint64_t k = 0; k < n + 100; ++k) {
    found += kv.Get(k, &out) ? 1 : 0;
  }
  EXPECT_EQ(found, n);
  for (uint64_t k = 0; k < n; k += 2) {
    EXPECT_TRUE(kv.Delete(k));
  }
  EXPECT_FALSE(kv.Delete(2));
  EXPECT_EQ(kv.total_keys(), n / 2);

  KvShardStats total = kv.TotalStats();
  EXPECT_EQ(total.puts, n);
  EXPECT_EQ(total.inserts, n);
  EXPECT_EQ(total.gets, n + 100);
  EXPECT_EQ(total.hits, n);
  EXPECT_EQ(total.deletes, n / 2 + 1);
  EXPECT_EQ(total.removed, n / 2);
  EXPECT_EQ(total.get_ns.count(), n + 100);

  std::string prom = kv.StatsToProm();
  EXPECT_NE(prom.find("dilos_kv_ops_total"), std::string::npos);
  EXPECT_NE(prom.find("dilos_kv_keys"), std::string::npos);
  EXPECT_NE(prom.find("dilos_kv_latency_ns"), std::string::npos);
}

TEST(KvService, ScanIsOrderedWithinOwningShard) {
  Fabric fabric(CostModel::Default(), 2);
  auto rt = MakeRt(fabric, 512);
  KvConfig cfg;
  cfg.shards = 2;
  cfg.tree.value_size = 16;
  KvService kv(*rt, cfg);
  for (uint64_t k = 0; k < 500; ++k) {
    kv.Put(k, ValueFor(k, 0, 16));
  }
  std::vector<std::pair<uint64_t, std::string>> out;
  uint32_t got = kv.Scan(10, 40, &out);
  EXPECT_EQ(got, 40u);
  int shard = kv.ShardOf(10);
  uint64_t prev = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i].first, 10u);
    EXPECT_EQ(kv.ShardOf(out[i].first), shard) << "scan stays in the owning shard";
    if (i > 0) {
      EXPECT_GT(out[i].first, prev) << "ordered";
    }
    prev = out[i].first;
  }
}

TEST(KvService, GuidedScansCutDemandFaults) {
  // Miniature of bench_ycsb mix E: same scans with and without the
  // KvScanGuide installed; guidance must convert demand faults into
  // prefetches (the runtime counters are the contract the docs list).
  auto run = [](bool guided, uint64_t* faults, uint64_t* prefetched) {
    Fabric fabric(CostModel::Default(), 2);
    DilosConfig cfg;
    cfg.local_mem_bytes = 96 * kPageSize;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    KvConfig kcfg;
    kcfg.shards = 2;
    kcfg.tree.value_size = 256;
    KvService kv(rt, kcfg, &rt.tracer());
    KvScanGuide guide(8);
    if (guided) {
      rt.set_guide(&guide);
      kv.set_scan_hooks(&guide);
    }
    const uint64_t n = 6000;
    for (uint64_t k = 0; k < n; ++k) {
      kv.Put(k, ValueFor(k, 0, 256));
    }
    uint64_t f0 = rt.stats().major_faults;
    std::vector<std::pair<uint64_t, std::string>> out;
    Rng rng(3);
    for (int i = 0; i < 150; ++i) {
      out.clear();
      kv.Scan(rng.NextBelow(n), 100, &out);
    }
    *faults = rt.stats().major_faults - f0;
    *prefetched = rt.stats().kv_scan_prefetch_pages;
    if (guided) {
      EXPECT_GT(rt.stats().kv_guided_scans, 0u);
      EXPECT_GT(guide.scans_guided(), 0u);
    }
  };
  uint64_t demand_faults = 0, demand_prefetched = 0;
  uint64_t guided_faults = 0, guided_prefetched = 0;
  run(false, &demand_faults, &demand_prefetched);
  run(true, &guided_faults, &guided_prefetched);
  EXPECT_EQ(demand_prefetched, 0u);
  EXPECT_GT(guided_prefetched, 0u);
  EXPECT_LT(guided_faults, demand_faults / 2)
      << "guided scans must at least halve demand faults on this layout";
}

// -- KV under chaos -------------------------------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 100) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

void DriveMs(DilosRuntime& rt, uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

// One chaos run: a YCSB-A-style 50/50 read/update burst over the KV service
// while a crash window and a one-way partition window play out (scoped so
// only one node is in trouble at a time — the replication=2 redundancy
// budget). Asserts: every acknowledged write reads back exactly, online
// reads never return stale/wrong bytes, full per-shard scans complete and
// return exactly the model's keys (no stuck scan), and no fetch was ever
// abandoned.
void KvChaosSoak(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  plan.specs.push_back({1, FaultKind::kCrash, 1.0, 1.0, 2 * kMs, 8 * kMs});
  plan.specs.push_back({0, FaultKind::kPartitionOut, 1.0, 1.0, 12 * kMs, 15 * kMs});
  fabric.set_fault_plan(plan);

  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.fault_seed = seed;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  KvConfig kcfg;
  kcfg.shards = 4;
  kcfg.tree.value_size = 64;
  kcfg.tree.granules_per_chunk = 4;
  KvService kv(rt, kcfg);

  // ~143 leaf pages across the shards — more than 2x the 64-page local
  // cache, so the burst continuously pages against the faulty fabric.
  const uint64_t key_space = 8000;
  std::map<uint64_t, std::string> model;  // Acknowledged state.
  for (uint64_t k = 0; k < key_space; ++k) {
    kv.Put(k, ValueFor(k, 0, 64));
    model[k] = ValueFor(k, 0, 64);  // Put returned: acknowledged.
  }

  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  uint64_t version = 1;
  uint64_t ops = 0;
  std::string out;
  while (rt.clock(0).now() < 17 * kMs && ops < 400'000) {
    uint64_t k = next() % key_space;
    if (next() % 2 == 0) {
      std::string v = ValueFor(k, version++, 64);
      kv.Put(k, v);
      model[k] = v;  // Acknowledged the moment Put returns.
    } else if (kv.Get(k, &out)) {
      if (out != model[k]) {
        ++wrong_reads;
      }
    } else {
      ++wrong_reads;  // Every key in [0, key_space) was acked at load.
    }
    ++ops;
  }
  // Settle: windows over, crashed node re-admitted, repairs drained.
  DriveMs(rt, 10);
  DriveUntilIdle(rt);

  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed;

  // No lost acknowledged write.
  uint64_t lost = 0, corrupt = 0;
  for (const auto& [k, v] : model) {
    if (!kv.Get(k, &out)) {
      ++lost;
    } else if (out != v) {
      ++corrupt;
    }
  }
  EXPECT_EQ(lost, 0u) << "fault_seed=" << seed;
  EXPECT_EQ(corrupt, 0u) << "fault_seed=" << seed;

  // No stuck scan: every shard scans end to end and the union of the
  // per-shard scans is exactly the model.
  uint64_t scanned = 0;
  for (int s = 0; s < kv.shards(); ++s) {
    std::vector<std::pair<uint64_t, std::string>> items;
    uint32_t got =
        kv.tree(s).Scan(0, static_cast<uint32_t>(model.size()) + 16, &items);
    EXPECT_EQ(got, items.size()) << "fault_seed=" << seed << " shard=" << s;
    for (const auto& [k, v] : items) {
      auto it = model.find(k);
      ASSERT_NE(it, model.end()) << "fault_seed=" << seed << " ghost key " << k;
      EXPECT_EQ(v, it->second) << "fault_seed=" << seed << " key " << k;
    }
    scanned += got;
  }
  EXPECT_EQ(scanned, model.size()) << "fault_seed=" << seed;
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << seed;
  EXPECT_GT(fabric.injector().injected_faults(), 0u) << "fault_seed=" << seed;
}

TEST(KvChaos, AckedWritesSurviveCrashAndPartitionAcrossSeeds) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 8; ++s) {
    KvChaosSoak(s);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

}  // namespace
}  // namespace dilos
