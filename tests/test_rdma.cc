// Tests for the simulated RDMA fabric: data movement, protection keys,
// scatter/gather validation, link serialization, and completion ordering.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "src/memnode/fabric.h"
#include "src/memnode/memory_node.h"
#include "src/rdma/link.h"
#include "src/rdma/queue_pair.h"

namespace dilos {
namespace {

class RdmaTest : public ::testing::Test {
 protected:
  Fabric fabric_;
  QueuePair* qp_ = fabric_.CreateQp();
  std::array<uint8_t, kPageSize> buf_{};
};

TEST_F(RdmaTest, WriteThenReadRoundTrips) {
  std::memset(buf_.data(), 0xAB, buf_.size());
  uint64_t remote = kFarBase + 10 * kPageSize;
  Completion w =
      qp_->PostWrite(1, reinterpret_cast<uint64_t>(buf_.data()), remote, kPageSize, 0);
  EXPECT_EQ(w.status, WcStatus::kSuccess);

  std::array<uint8_t, kPageSize> back{};
  Completion r =
      qp_->PostRead(2, reinterpret_cast<uint64_t>(back.data()), remote, kPageSize, w.completion_time_ns);
  EXPECT_EQ(r.status, WcStatus::kSuccess);
  EXPECT_EQ(std::memcmp(back.data(), buf_.data(), kPageSize), 0);
}

TEST_F(RdmaTest, UnwrittenRemoteMemoryReadsAsZero) {
  std::memset(buf_.data(), 0xFF, buf_.size());
  Completion r = qp_->PostRead(1, reinterpret_cast<uint64_t>(buf_.data()),
                               kFarBase + 99 * kPageSize, 512, 0);
  EXPECT_EQ(r.status, WcStatus::kSuccess);
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(buf_[static_cast<size_t>(i)], 0);
  }
}

TEST_F(RdmaTest, BadRkeyIsRejected) {
  WorkRequest wr;
  wr.wr_id = 3;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({reinterpret_cast<uint64_t>(buf_.data()), 64});
  wr.remote.push_back({kFarBase, 64});
  wr.rkey = qp_->remote_rkey() + 1;
  Completion c = qp_->PostSend(wr, 0);
  EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
}

TEST_F(RdmaTest, OutOfRegionAccessIsRejected) {
  WorkRequest wr;
  wr.wr_id = 4;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({reinterpret_cast<uint64_t>(buf_.data()), 64});
  wr.remote.push_back({kFarBase + kFarSpan, 64});  // One past the region.
  wr.rkey = qp_->remote_rkey();
  Completion c = qp_->PostSend(wr, 0);
  EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
}

TEST_F(RdmaTest, SegmentCrossingRemotePageIsRejected) {
  WorkRequest wr;
  wr.wr_id = 5;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({reinterpret_cast<uint64_t>(buf_.data()), 256});
  wr.remote.push_back({kFarBase + kPageSize - 128, 256});  // Straddles pages.
  wr.rkey = qp_->remote_rkey();
  Completion c = qp_->PostSend(wr, 0);
  EXPECT_EQ(c.status, WcStatus::kRemoteAccessError);
}

TEST_F(RdmaTest, MismatchedSegmentLengthsRejected) {
  WorkRequest wr;
  wr.wr_id = 6;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({reinterpret_cast<uint64_t>(buf_.data()), 64});
  wr.remote.push_back({kFarBase, 128});
  wr.rkey = qp_->remote_rkey();
  EXPECT_EQ(qp_->PostSend(wr, 0).status, WcStatus::kLocalError);
}

TEST_F(RdmaTest, ScatterGatherMovesAllSegments) {
  // Write a pattern, then gather three disjoint pieces in one vectorized op.
  for (size_t i = 0; i < buf_.size(); ++i) {
    buf_[i] = static_cast<uint8_t>(i & 0xFF);
  }
  uint64_t remote = kFarBase + 7 * kPageSize;
  qp_->PostWrite(1, reinterpret_cast<uint64_t>(buf_.data()), remote, kPageSize, 0);

  std::array<uint8_t, kPageSize> dst{};
  WorkRequest wr;
  wr.wr_id = 2;
  wr.opcode = RdmaOpcode::kRead;
  wr.rkey = qp_->remote_rkey();
  const std::array<std::pair<uint32_t, uint32_t>, 3> segs = {
      {{0, 100}, {1000, 50}, {4000, 96}}};
  for (auto [off, len] : segs) {
    wr.local.push_back({reinterpret_cast<uint64_t>(dst.data()) + off, len});
    wr.remote.push_back({remote + off, len});
  }
  Completion c = qp_->PostSend(wr, 0);
  ASSERT_EQ(c.status, WcStatus::kSuccess);
  for (auto [off, len] : segs) {
    EXPECT_EQ(std::memcmp(dst.data() + off, buf_.data() + off, len), 0) << off;
  }
  // Bytes outside the segments were not transferred.
  EXPECT_EQ(dst[500], 0);
}

TEST_F(RdmaTest, CompletionsAreMonotonic) {
  uint64_t prev = 0;
  for (int i = 0; i < 10; ++i) {
    Completion c = qp_->PostRead(static_cast<uint64_t>(i),
                                 reinterpret_cast<uint64_t>(buf_.data()), kFarBase, 4096, 0);
    EXPECT_GE(c.completion_time_ns, prev);
    prev = c.completion_time_ns;
  }
}

TEST_F(RdmaTest, LinkSerializesManyOutstandingOps) {
  // A burst of page reads posted at t=0: the first few overlap inside the
  // fabric pipeline, but once the wire saturates, completions are spaced by
  // the wire time, so the last op finishes far beyond one fabric latency.
  Completion last{};
  const int kOps = 16;
  for (int i = 0; i < kOps; ++i) {
    last = qp_->PostRead(static_cast<uint64_t>(i), reinterpret_cast<uint64_t>(buf_.data()),
                         kFarBase, 4096, 0);
  }
  uint64_t one = fabric_.cost().ReadLatencyNs(4096);
  EXPECT_GT(last.completion_time_ns, one * 3);
  // And the spacing approaches the per-op wire occupancy.
  uint64_t wire = fabric_.link().busy_until() / kOps;
  EXPECT_GT(wire, 700u);  // ~200 ns per-op + 4096 * 0.155 ns/B.
  EXPECT_LT(wire, 1000u);
}

TEST_F(RdmaTest, IdleLinkGivesPureFabricLatency) {
  Completion c =
      qp_->PostRead(1, reinterpret_cast<uint64_t>(buf_.data()), kFarBase, 4096, 1'000'000);
  EXPECT_EQ(c.completion_time_ns, 1'000'000 + fabric_.cost().ReadLatencyNs(4096));
}

TEST_F(RdmaTest, BandwidthMeterAccounts) {
  qp_->PostRead(1, reinterpret_cast<uint64_t>(buf_.data()), kFarBase, 4096, 0);
  qp_->PostWrite(2, reinterpret_cast<uint64_t>(buf_.data()), kFarBase, 1024, 0);
  EXPECT_EQ(fabric_.link().rx().total_bytes(), 4096u);
  EXPECT_EQ(fabric_.link().tx().total_bytes(), 1024u);
}

TEST(CompletionQueueTest, PollRespectsTime) {
  CompletionQueue cq;
  cq.Push({1, WcStatus::kSuccess, 100});
  cq.Push({2, WcStatus::kSuccess, 200});
  EXPECT_FALSE(cq.Poll(50).has_value());
  auto c = cq.Poll(150);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->wr_id, 1u);
  EXPECT_FALSE(cq.Poll(150).has_value());
}

TEST(CompletionQueueTest, BlockingPollAdvancesClock) {
  CompletionQueue cq;
  cq.Push({1, WcStatus::kSuccess, 500});
  Clock clk;
  auto c = cq.BlockingPoll(clk);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(clk.now(), 500u);
}

TEST(PageStoreTest, MaterializesLazily) {
  PageStore store;
  EXPECT_FALSE(store.Materialized(5));
  uint8_t* p = store.PageData(5);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(store.Materialized(5));
  EXPECT_EQ(store.page_count(), 1u);
  EXPECT_EQ(p[0], 0);
}

TEST(PageStoreTest, ResolveRejectsCrossPage) {
  PageStore store;
  EXPECT_EQ(store.Resolve((5ULL << kPageShift) + 4000, 200, false), nullptr);
  EXPECT_NE(store.Resolve(5ULL << kPageShift, kPageSize, false), nullptr);
  EXPECT_EQ(store.Resolve(0, 0, false), nullptr);
}

}  // namespace
}  // namespace dilos
