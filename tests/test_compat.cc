// Tests for the ddc_* compatibility layer and multi-core fault semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/compat/ddc_api.h"
#include "src/dilos/prefetcher.h"

namespace dilos {
namespace {

class DdcApi : public ::testing::Test {
 protected:
  void SetUp() override {
    DdcOptions opt;
    opt.local_mem_bytes = 2 << 20;
    ASSERT_TRUE(ddc_init(opt));
  }
  void TearDown() override { ddc_shutdown(); }
};

TEST_F(DdcApi, InitIsIdempotent) {
  EXPECT_TRUE(ddc_initialized());
  EXPECT_FALSE(ddc_init());  // Second init is refused.
  EXPECT_TRUE(ddc_initialized());
}

TEST_F(DdcApi, MallocFreeRoundTrip) {
  uint64_t a = ddc_malloc(100);
  ASSERT_NE(a, 0u);
  EXPECT_EQ(ddc_usable_size(a), 128u);  // Size-classed.
  const char msg[] = "hello far memory";
  ddc_write(a, msg, sizeof(msg));
  char back[sizeof(msg)] = {};
  ddc_read(a, back, sizeof(msg));
  EXPECT_STREQ(back, msg);
  ddc_free(a);
  EXPECT_EQ(ddc_heap().live_chunks(), 0u);
}

TEST_F(DdcApi, MmapRegionsWorkUnderPressure) {
  uint64_t region = ddc_mmap(16 << 20);  // 8x local memory.
  for (uint64_t off = 0; off < (16 << 20); off += 4096) {
    uint64_t v = off * 13;
    ddc_write(region + off, &v, sizeof(v));
  }
  for (uint64_t off = 0; off < (16 << 20); off += 4096 * 101) {
    uint64_t v = 0;
    ddc_read(region + off, &v, sizeof(v));
    ASSERT_EQ(v, off * 13);
  }
  EXPECT_GT(ddc_stats().evictions, 0u);
  ddc_munmap(region, 16 << 20);
}

TEST_F(DdcApi, ClockAdvancesWithWork) {
  uint64_t t0 = ddc_now_ns();
  uint64_t a = ddc_malloc(4096);
  uint64_t v = 42;
  ddc_write(a, &v, sizeof(v));
  EXPECT_GT(ddc_now_ns(), t0);
}

TEST(DdcApiLifecycle, ShutdownAndReinit) {
  DdcOptions opt;
  opt.prefetcher = "trend";
  opt.memory_nodes = 2;
  opt.replication = 2;
  ASSERT_TRUE(ddc_init(opt));
  uint64_t a = ddc_malloc(64);
  uint64_t v = 7;
  ddc_write(a, &v, sizeof(v));
  ddc_shutdown();
  EXPECT_FALSE(ddc_initialized());
  // A fresh instance starts clean.
  ASSERT_TRUE(ddc_init());
  EXPECT_EQ(ddc_heap().live_chunks(), 0u);
  ddc_shutdown();
}

TEST(MultiCoreFaults, ConcurrentTouchOfInFlightPageDoesNotDuplicateFetch) {
  // Paper Sec. 4.2: a second core reading a `fetching` PTE waits for the
  // in-flight fill instead of issuing a duplicate RDMA read.
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  cfg.num_cores = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * kPageSize, static_cast<uint8_t>(p), 0);
  }
  // Page 0 is evicted by now. Core 0 faults it in...
  uint64_t fetched0 = rt.stats().bytes_fetched;
  EXPECT_EQ(rt.Read<uint8_t>(region, 0), 0u);
  // ...core 1 touches it immediately after (page now local: no new fetch).
  EXPECT_EQ(rt.Read<uint8_t>(region, 1), 0u);
  EXPECT_EQ(rt.stats().bytes_fetched - fetched0, static_cast<uint64_t>(kPageSize));
}

}  // namespace
}  // namespace dilos
