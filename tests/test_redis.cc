// Tests for Redis-lite: command semantics on far memory, quicklist
// structure, the benchmark driver, and behavior under memory pressure.
#include <gtest/gtest.h>

#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace dilos {
namespace {

class RedisTest : public ::testing::Test {
 protected:
  explicit RedisTest(uint64_t local_bytes = 16 << 20) {
    DilosConfig cfg;
    cfg.local_mem_bytes = local_bytes;
    rt_ = std::make_unique<DilosRuntime>(fabric_, cfg, std::make_unique<ReadaheadPrefetcher>());
    redis_ = std::make_unique<RedisLite>(*rt_, 1 << 12);
  }

  Fabric fabric_;
  std::unique_ptr<DilosRuntime> rt_;
  std::unique_ptr<RedisLite> redis_;
};

TEST_F(RedisTest, SetGetRoundTrip) {
  redis_->Set("hello", "world");
  std::string v;
  ASSERT_TRUE(redis_->Get("hello", &v));
  EXPECT_EQ(v, "world");
}

TEST_F(RedisTest, GetMissingReturnsFalse) {
  std::string v;
  EXPECT_FALSE(redis_->Get("nope", &v));
}

TEST_F(RedisTest, SetOverwrites) {
  redis_->Set("k", "v1");
  redis_->Set("k", "v2-longer-value");
  std::string v;
  ASSERT_TRUE(redis_->Get("k", &v));
  EXPECT_EQ(v, "v2-longer-value");
  EXPECT_EQ(redis_->dict().size(), 1u);
}

TEST_F(RedisTest, DelRemovesAndFrees) {
  redis_->Set("k", std::string(1000, 'x'));
  uint64_t live_before = redis_->heap().live_bytes();
  ASSERT_TRUE(redis_->Del("k"));
  std::string v;
  EXPECT_FALSE(redis_->Get("k", &v));
  EXPECT_LT(redis_->heap().live_bytes(), live_before);
  EXPECT_FALSE(redis_->Del("k"));  // Second DEL is a miss.
}

TEST_F(RedisTest, LargeValuesSurvive) {
  std::string big(128 * 1024, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  redis_->Set("big", big);
  std::string v;
  ASSERT_TRUE(redis_->Get("big", &v));
  EXPECT_EQ(v, big);
}

TEST_F(RedisTest, ManyKeysHashChains) {
  // More keys than buckets in some chains: collision handling must hold.
  for (int i = 0; i < 5000; ++i) {
    redis_->Set(RedisBench::KeyName(static_cast<uint64_t>(i)), "v" + std::to_string(i));
  }
  EXPECT_EQ(redis_->dict().size(), 5000u);
  std::string v;
  ASSERT_TRUE(redis_->Get(RedisBench::KeyName(4321), &v));
  EXPECT_EQ(v, "v4321");
}

TEST_F(RedisTest, RpushLrangeOrdered) {
  for (int i = 0; i < 300; ++i) {
    redis_->Rpush("mylist", "elem-" + std::to_string(i));
  }
  std::vector<std::string> out;
  EXPECT_EQ(redis_->Lrange("mylist", 0, 100, &out), 100u);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], "elem-" + std::to_string(i));
  }
}

TEST_F(RedisTest, LrangeSpansMultipleNodes) {
  // 300 elements with 32-entry ziplists => ~10 quicklist nodes; ranges that
  // start mid-node must decode correctly.
  for (int i = 0; i < 300; ++i) {
    redis_->Rpush("l", std::to_string(i));
  }
  std::vector<std::string> out;
  EXPECT_EQ(redis_->Lrange("l", 90, 50, &out), 50u);
  EXPECT_EQ(out.front(), "90");
  EXPECT_EQ(out.back(), "139");
}

TEST_F(RedisTest, LrangePastEndTruncates) {
  for (int i = 0; i < 10; ++i) {
    redis_->Rpush("s", std::to_string(i));
  }
  std::vector<std::string> out;
  EXPECT_EQ(redis_->Lrange("s", 5, 100, &out), 5u);
  out.clear();
  EXPECT_EQ(redis_->Lrange("missing", 0, 10, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(RedisTest, DelListFreesAllNodes) {
  for (int i = 0; i < 200; ++i) {
    redis_->Rpush("l", std::string(90, 'z'));
  }
  uint64_t live_before = redis_->heap().live_bytes();
  ASSERT_TRUE(redis_->Del("l"));
  EXPECT_LT(redis_->heap().live_bytes(), live_before / 4);
}

class RedisPressureTest : public RedisTest {
 protected:
  RedisPressureTest() : RedisTest(2 << 20) {}  // 2 MB local only.
};

TEST_F(RedisPressureTest, WorkloadSurvivesEviction) {
  RedisBench bench(*redis_);
  bench.PopulateStrings(2000, {4096});  // ~8 MB of values, 2 MB local.
  EXPECT_GT(rt_->stats().evictions, 0u);
  RedisBenchResult res = bench.RunGet(500);
  EXPECT_EQ(res.ops, 500u);
  EXPECT_GT(res.OpsPerSec(), 0.0);
  EXPECT_GT(res.latency.Percentile(99), res.latency.Percentile(50));
}

TEST_F(RedisPressureTest, DelThenGetStillCorrect) {
  RedisBench bench(*redis_);
  bench.PopulateStrings(2000, {1024});
  bench.RunDel(1400);  // ~70% as in Fig. 12.
  EXPECT_EQ(bench.live_keys(), 600u);
  RedisBenchResult res = bench.RunGet(300);
  EXPECT_EQ(res.ops, 300u);  // Every surviving key must still resolve.
}

TEST_F(RedisPressureTest, LrangeWorkload) {
  RedisBench bench(*redis_);
  bench.PopulateLists(64, 64 * 100, 90);
  RedisBenchResult res = bench.RunLrange(100);
  EXPECT_EQ(res.ops, 100u);
  EXPECT_GT(res.latency.MeanNs(), 0.0);
}

}  // namespace
}  // namespace dilos
