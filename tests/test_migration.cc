// Tests for live granule migration and graceful node drain
// (src/recovery/migration.*): the copy/catch-up/forward state machine, the
// post-cutover forwarding window, DrainNode decommissioning under live load,
// phase-by-phase crash injection at every state-machine boundary, coordinator
// crash + restart re-derivation, and a multi-seed drain-under-chaos soak.
//
// Failures print the seed; `DILOS_CHAOS_SEED_BASE=<seed>` replays the exact
// fault schedule (same contract as test_chaos.cc).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fault_injector.h"
#include "src/recovery/migration.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

DilosConfig MigrationTestConfig(int replication) {
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = replication;
  cfg.recovery.enabled = true;
  // Every test doubles as an accounting audit: the destructor asserts the
  // migration counters balance (started == committed + rolled back +
  // inflight, reships <= pages, failbacks <= committed).
  cfg.telemetry.check_invariants = true;
  return cfg;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++errors;
    }
  }
  return errors;
}

void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 50) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

void DriveMs(DilosRuntime& rt, uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

// First written granule holding a replica on `node` (-1: any written granule).
uint64_t PickGranuleOn(DilosRuntime& rt, int node, std::vector<int>* replicas) {
  for (uint64_t granule : rt.router().written_granules()) {
    rt.router().ReplicaNodes(granule << kShardGranuleShift, replicas);
    if (node < 0 ||
        std::find(replicas->begin(), replicas->end(), node) != replicas->end()) {
      return granule;
    }
  }
  ADD_FAILURE() << "no written granule on node " << node;
  return 0;
}

bool NodeHoldsGranulePages(Fabric& fabric, int node, uint64_t granule) {
  const PageStore& store = fabric.node(node).store();
  uint64_t base = granule << kShardGranuleShift;
  for (uint32_t p = 0; p < kPagesPerGranule; ++p) {
    if (store.Materialized((base + static_cast<uint64_t>(p) * kPageSize) >> kPageShift)) {
      return true;
    }
  }
  return false;
}

// Arms a one-shot crash of the migrating granule's source or target at the
// given phase boundary — the crash-injection hook the state machine exposes.
void ArmPhaseCrash(DilosRuntime& rt, Fabric& fabric, MigrationManager::Phase when,
                   bool crash_target) {
  auto fired = std::make_shared<bool>(false);
  rt.migration()->set_phase_observer(
      [&rt, &fabric, when, crash_target, fired](uint64_t granule,
                                                MigrationManager::Phase phase, uint64_t) {
        if (*fired || phase != when) {
          return;
        }
        int node;
        if (phase == MigrationManager::Phase::kForward) {
          // Post-commit the migration intent is cleared; the forwarding
          // window is the only record of who the endpoints were.
          const ShardRouter::ForwardEntry* fw = rt.router().Forwarding(granule);
          if (fw == nullptr) {
            return;
          }
          node = crash_target ? fw->to : fw->from;
        } else {
          node = crash_target ? rt.router().MigratingTarget(granule)
                              : rt.router().MigratingSource(granule);
        }
        if (node < 0) {
          return;
        }
        *fired = true;
        fabric.CrashNode(node);
      });
}

// -- Single-granule migration -------------------------------------------------

TEST(Migration, MigrateGranuleMovesDataAndReclaimsSource) {
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  int source = replicas[0];
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, source, rt.clock(0).now()));
  int target = rt.router().MigratingTarget(granule);
  ASSERT_GE(target, 0);
  EXPECT_EQ(rt.stats().migrations_started, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 1u);

  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());
  EXPECT_EQ(rt.stats().migrations_committed, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 0u);
  EXPECT_GT(rt.stats().migration_pages, 0u);

  // The replica set swapped source for target, and the source's stored pages
  // were dropped when the forwarding window expired — the reclaimed capacity.
  rt.router().ReplicaNodes(granule << kShardGranuleShift, &replicas);
  EXPECT_EQ(std::count(replicas.begin(), replicas.end(), source), 0);
  EXPECT_EQ(std::count(replicas.begin(), replicas.end(), target), 1);
  EXPECT_FALSE(NodeHoldsGranulePages(fabric, source, granule));

  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(Migration, RefusesIllegalRequests) {
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  uint64_t now = rt.clock(0).now();
  // A granule never written has no remote data to move.
  EXPECT_FALSE(rt.migration()->MigrateGranule(granule + 1000, replicas[0], now));
  // The named source must actually hold a replica.
  int stranger = 0;
  while (std::find(replicas.begin(), replicas.end(), stranger) != replicas.end()) {
    ++stranger;
  }
  EXPECT_FALSE(rt.migration()->MigrateGranule(granule, stranger, now));
  // An explicit target already in the replica set is not a move.
  EXPECT_FALSE(rt.migration()->MigrateGranule(granule, replicas[0], now, replicas[1]));
  // Double-queuing the same granule is refused while the first is in flight.
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, replicas[0], now));
  EXPECT_FALSE(rt.migration()->MigrateGranule(granule, replicas[0], now));
  DriveUntilIdle(rt);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

TEST(Migration, RacingReadsAreForwardedThroughTheWindow) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg = MigrationTestConfig(1);
  // Hold the window open long enough for a full sweep to race the cutover.
  cfg.recovery.migration.forward_window_ns = 20 * kMs;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  int source = replicas[0];
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, source, rt.clock(0).now()));
  for (int i = 0; i < 200 && rt.stats().migrations_committed == 0; ++i) {
    rt.DriveRecovery(100'000);
  }
  ASSERT_EQ(rt.stats().migrations_committed, 1u);
  ASSERT_NE(rt.router().Forwarding(granule), nullptr) << "window should still be open";

  // With replication 1 the stale routing decision is the *only* copy a racing
  // read can pick: every remote read of the migrated granule inside the
  // window must be redirected, not failed.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_GT(rt.stats().migration_forwards, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);

  DriveMs(rt, 25);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());
  EXPECT_FALSE(NodeHoldsGranulePages(fabric, source, granule));
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

// -- Graceful drain -----------------------------------------------------------

TEST(MigrationDrain, DrainNodeEmptiesAndRetiresUnderLiveLoad) {
  Fabric fabric(CostModel::Default(), 4);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  ASSERT_TRUE(rt.DrainNode(1, rt.clock(0).now()));
  EXPECT_EQ(rt.router().state(1), NodeState::kDraining);
  // Re-draining an in-progress node is idempotent; dead/retired nodes refuse.
  EXPECT_TRUE(rt.DrainNode(1, rt.clock(0).now()));

  // Mixed read/write load runs against the draining node the whole time: a
  // drain is a planned change, not an outage.
  uint64_t rng = 0x5EED;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  for (int round = 0; round < 400 && !(rt.RecoveryIdle() &&
                                       rt.router().state(1) == NodeState::kRetired);
       ++round) {
    for (int op = 0; op < 32; ++op) {
      uint64_t p = next() % pages;
      if (next() % 4 == 0) {
        rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
      } else if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
        ++wrong_reads;
      }
    }
    rt.DriveRecovery(1'000'000);
  }
  DriveUntilIdle(rt, 200);

  EXPECT_EQ(rt.router().state(1), NodeState::kRetired);
  EXPECT_EQ(rt.stats().nodes_drained, 1u);
  EXPECT_EQ(wrong_reads, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "drain must never fail a read";
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_GT(rt.stats().migrations_committed, 0u);

  // The node is actually empty: every granule moved, every stored page freed.
  EXPECT_EQ(fabric.node(1).store().page_count(), 0u);
  std::vector<int> replicas;
  for (uint64_t granule : rt.router().written_granules()) {
    rt.router().ReplicaNodes(granule << kShardGranuleShift, &replicas);
    EXPECT_EQ(std::count(replicas.begin(), replicas.end(), 1), 0)
        << "granule " << granule << " still routed to the retired node";
  }
}

TEST(MigrationDrain, RetiredNodeIsNeverReadmittedOrRepopulated) {
  Fabric fabric(CostModel::Default(), 4);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  ASSERT_TRUE(rt.DrainNode(2, rt.clock(0).now()));
  DriveUntilIdle(rt, 200);
  ASSERT_EQ(rt.router().state(2), NodeState::kRetired);

  // Unlike a crashed node, a retired one answers probes — and must still
  // never be readmitted: retirement is terminal.
  DriveMs(rt, 30);
  EXPECT_EQ(rt.router().state(2), NodeState::kRetired);
  EXPECT_EQ(rt.stats().nodes_readmitted, 0u);

  // First-writes after retirement place their replicas elsewhere at full
  // strength; nothing ever lands on the retired node again.
  uint64_t region2 = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region2, pages);
  EXPECT_EQ(VerifySweep(rt, region2, pages), 0u);
  DriveMs(rt, 5);
  EXPECT_EQ(fabric.node(2).store().page_count(), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

// -- Crash injection at every phase boundary ----------------------------------

TEST(MigrationCrash, SourceDeathDuringCopyStillCommitsFromSurvivors) {
  Fabric fabric(CostModel::Default(), 4);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  ArmPhaseCrash(rt, fabric, MigrationManager::Phase::kCopy, /*crash_target=*/false);
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, replicas[0], rt.clock(0).now()));

  // The fill survives its source's death: the copy continues from the other
  // replica, and the cutover commits without a forwarding window (a dead
  // source has no racing readers to redirect).
  DriveMs(rt, 5);
  DriveUntilIdle(rt, 300);
  EXPECT_GE(rt.stats().migrations_committed, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(MigrationCrash, TargetDeathDuringCopyRollsBackLosslessly) {
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  ArmPhaseCrash(rt, fabric, MigrationManager::Phase::kCopy, /*crash_target=*/true);
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, replicas[0], rt.clock(0).now()));

  DriveMs(rt, 5);
  DriveUntilIdle(rt, 300);
  EXPECT_GE(rt.stats().migrations_rolled_back, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 0u);
  // Rollback restored the original mapping — the source still serves.
  rt.router().ReplicaNodes(granule << kShardGranuleShift, &replicas);
  EXPECT_GE(replicas.size(), 1u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

TEST(MigrationCrash, TargetDeathDuringCatchUpRollsBackLosslessly) {
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  ArmPhaseCrash(rt, fabric, MigrationManager::Phase::kCatchUp, /*crash_target=*/true);
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, replicas[0], rt.clock(0).now()));

  DriveMs(rt, 5);
  DriveUntilIdle(rt, 300);
  EXPECT_GE(rt.stats().migrations_rolled_back, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

TEST(MigrationCrash, TargetDeathInsideWindowFailsBackWithoutLoss) {
  // Replication 2: the crashed target also strands unrelated granules it
  // homed, and those must survive via their second replica — a single-copy
  // config would turn this injection into by-design data loss elsewhere.
  Fabric fabric(CostModel::Default(), 4);
  DilosConfig cfg = MigrationTestConfig(2);
  // The window must outlive failure detection for the failback to race it.
  cfg.recovery.migration.forward_window_ns = 30 * kMs;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  std::vector<int> replicas;
  uint64_t granule = PickGranuleOn(rt, /*node=*/-1, &replicas);
  int source = replicas[0];
  ArmPhaseCrash(rt, fabric, MigrationManager::Phase::kForward, /*crash_target=*/true);
  ASSERT_TRUE(rt.migration()->MigrateGranule(granule, source, rt.clock(0).now()));

  DriveMs(rt, 10);
  DriveUntilIdle(rt, 300);

  EXPECT_GE(rt.stats().migration_failbacks, 1u);
  // The cutover was undone: the source — which kept receiving writes for the
  // whole window — serves again, and no acked write was lost.
  rt.router().ReplicaNodes(granule << kShardGranuleShift, &replicas);
  EXPECT_EQ(std::count(replicas.begin(), replicas.end(), source), 1);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(MigrationCrash, CoordinatorRestartMidDrainRederivesAndConverges) {
  Fabric fabric(CostModel::Default(), 4);
  DilosRuntime rt(fabric, MigrationTestConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  ASSERT_TRUE(rt.DrainNode(1, rt.clock(0).now()));
  // Let the drain get partway: some cutovers committed, some copies half-done.
  for (int i = 0; i < 300 && rt.stats().migrations_committed == 0; ++i) {
    rt.DriveRecovery(100'000);
  }
  ASSERT_GT(rt.stats().migrations_committed, 0u);
  ASSERT_FALSE(rt.RecoveryIdle());

  // Coordinator crash: all in-memory jobs vanish. Restart re-derives the
  // draining set, half-done copies, and open windows from the router alone.
  rt.migration()->Restart(rt.clock(0).now());

  DriveUntilIdle(rt, 400);
  EXPECT_EQ(rt.router().state(1), NodeState::kRetired);
  EXPECT_EQ(rt.stats().nodes_drained, 1u);
  EXPECT_EQ(rt.stats().migrations_inflight, 0u);
  EXPECT_EQ(fabric.node(1).store().page_count(), 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

// -- Multi-seed drain-under-chaos soak ----------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// One soak run: drain node 1 while node 2 rides a crash window, node 3 is
// transiently flaky, wire bit flips hit everyone, and a mixed read/write load
// runs across the whole timeline. The drained node stays alive throughout, so
// the concurrent crash stays inside the replication=2 redundancy budget.
// Asserts the drain completes, no read ever returned wrong bytes, and no
// fetch was abandoned; the runtime destructor audits the migration counters.
void DrainSoak(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 4);
  FaultPlan plan;
  plan.specs.push_back({2, FaultKind::kCrash, 1.0, 1.0, 3 * kMs, 9 * kMs});
  plan.specs.push_back({3, FaultKind::kTransient, 0.02, 1.0, 5 * kMs, 12 * kMs});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.01, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);

  DilosConfig cfg = MigrationTestConfig(2);
  cfg.fault_seed = seed;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  ASSERT_TRUE(rt.DrainNode(1, rt.clock(0).now()));

  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  uint64_t ops = 0;
  while (rt.clock(0).now() < 16 * kMs && ops < 400'000) {
    uint64_t p = next() % pages;
    if (next() % 4 == 0) {
      rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
    } else if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++wrong_reads;
    }
    ++ops;
  }
  // Settle: fault windows over, the crashed node readmitted, drain finished.
  DriveMs(rt, 10);
  for (int i = 0; i < 600 && !(rt.RecoveryIdle() &&
                               rt.router().state(1) == NodeState::kRetired);
       ++i) {
    rt.DriveRecovery(1'000'000);
  }

  EXPECT_EQ(rt.router().state(1), NodeState::kRetired) << "fault_seed=" << seed;
  EXPECT_EQ(rt.stats().nodes_drained, 1u) << "fault_seed=" << seed;
  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed;
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << seed;
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << seed;
  EXPECT_EQ(fabric.node(1).store().page_count(), 0u) << "fault_seed=" << seed;
}

TEST(MigrationChaos, DrainSurvives32SeedsOfMixedFaults) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    DrainSoak(s);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

}  // namespace
}  // namespace dilos
