// Chaos-fabric tests: deterministic fault injection (src/memnode/
// fault_injector.h), end-to-end page integrity (src/recovery/integrity.h +
// the scrubber), gray-failure handling (failure_detector.cc), and the
// multi-seed soak that runs crash + delay + corruption + partition mixes
// under both replication and erasure coding, asserting no read ever returns
// corrupt or lost data.
//
// Every probabilistic fault derives from DilosConfig::fault_seed; failures
// print the seed so `DILOS_CHAOS_SEED_BASE=<seed>` (or editing the seed in
// the repro) replays the exact schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fault_injector.h"
#include "src/recovery/integrity.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

DilosConfig ChaosConfig(int replication) {
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = replication;
  cfg.recovery.enabled = true;
  return cfg;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++errors;
    }
  }
  return errors;
}

void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 50) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

// Unconditionally drives the recovery/background clock forward (probes,
// readmission, scrubbing) even when the repair queue is empty — unlike
// DriveUntilIdle, which returns immediately on an idle repair manager.
void DriveMs(DilosRuntime& rt, uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

uint64_t Pct(std::vector<uint64_t>& lat, double p) {
  if (lat.empty()) {
    return 0;
  }
  std::sort(lat.begin(), lat.end());
  return lat[static_cast<size_t>(p * static_cast<double>(lat.size() - 1))];
}

// -- Deterministic injection --------------------------------------------------

struct RunFingerprint {
  uint64_t injected = 0, timeouts = 0, flips = 0;
  uint64_t mismatches = 0, retries = 0, end_ns = 0;
  bool operator==(const RunFingerprint& o) const {
    return injected == o.injected && timeouts == o.timeouts && flips == o.flips &&
           mismatches == o.mismatches && retries == o.retries && end_ns == o.end_ns;
  }
};

RunFingerprint FingerprintRun(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  plan.specs.push_back({2, FaultKind::kTransient, 0.05, 1.0, 0, UINT64_MAX});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.02, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = seed;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << seed;
  RunFingerprint f;
  f.injected = fabric.injector().injected_faults();
  f.timeouts = fabric.injector().injected_timeouts();
  f.flips = fabric.injector().injected_bit_flips();
  f.mismatches = rt.stats().checksum_mismatches;
  f.retries = rt.stats().fetch_retries;
  f.end_ns = rt.MaxTimeNs();
  return f;
}

TEST(ChaosInjector, SameSeedReplaysIdenticalFaultSchedule) {
  RunFingerprint a = FingerprintRun(42);
  RunFingerprint b = FingerprintRun(42);
  EXPECT_TRUE(a == b) << "same seed must replay the same schedule";
  EXPECT_GT(a.injected, 0u) << "the plan should actually inject faults";
}

TEST(ChaosInjector, TransientTimeoutsAreRetriedWithoutDataLoss) {
  // Faults scoped to node 2: nodes 0 and 1 stay healthy, so every page
  // always has a live, verified replica no matter how node 2 flaps.
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  plan.specs.push_back({2, FaultKind::kTransient, 0.05, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 7;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << cfg.fault_seed;
  EXPECT_GT(fabric.injector().injected_timeouts(), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << cfg.fault_seed;
}

TEST(ChaosInjector, CrashWindowIsDetectedAndNodeReadmitted) {
  Fabric fabric(CostModel::Default(), 2);
  FaultPlan plan;
  // Node 1 is unreachable for the first 5 ms of the run, then recovers —
  // exactly what CrashNode + RestoreNode did, now as one plan entry.
  plan.specs.push_back({1, FaultKind::kCrash, 1.0, 1.0, 0, 5 * kMs});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 3;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.router().state(1), NodeState::kDead) << "crash window must strike node 1 out";

  // Past the window the node answers probes again: readmitted as rebuilding,
  // refilled from the survivor, and eventually serving reads.
  DriveMs(rt, 20);
  DriveUntilIdle(rt, 100);
  EXPECT_GT(rt.stats().nodes_readmitted, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  // The refilled copies must be real: crash the survivor and read everything
  // through node 1 alone.
  fabric.CrashNode(0);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "refilled node must carry the data";
}

// -- Integrity ----------------------------------------------------------------

TEST(ChaosIntegrity, WireBitFlipsAreCaughtAndRefetched) {
  Fabric fabric(CostModel::Default(), 2);
  FaultPlan plan;
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.05, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 11;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  for (int sweep = 0; sweep < 3; ++sweep) {
    EXPECT_EQ(VerifySweep(rt, region, pages), 0u)
        << "fault_seed=" << cfg.fault_seed << " sweep=" << sweep;
  }
  EXPECT_GT(fabric.injector().injected_bit_flips(), 0u);
  EXPECT_GT(rt.stats().checksum_mismatches, 0u) << "flips must be noticed, not absorbed";
  EXPECT_GT(rt.stats().refetches, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << cfg.fault_seed;
}

TEST(ChaosIntegrity, StorageRotIsHealedFromTheGoodReplica) {
  Fabric fabric(CostModel::Default(), 2);
  DilosRuntime rt(fabric, ChaosConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  // Find an evicted page whose copies are checksummed on both replicas.
  std::vector<int> replicas;
  uint64_t victim_va = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    uint64_t va = region + p * kPageSize;
    if (PteTagOf(rt.page_table().Get(va)) == PteTag::kLocal) {
      continue;
    }
    rt.router().ReplicaNodes(va, &replicas);
    if (replicas.size() == 2 &&
        fabric.node(replicas[0]).store().HasChecksum(va >> kPageShift) &&
        fabric.node(replicas[1]).store().HasChecksum(va >> kPageShift)) {
      victim_va = va;
      break;
    }
  }
  ASSERT_NE(victim_va, 0u) << "no evicted checksummed page found";
  uint64_t expect = ((victim_va - region) / kPageSize) ^ 0xD15C0;

  // Rot a bit *inside the value being read* on the primary copy.
  PageStore& primary = fabric.node(replicas[0]).store();
  primary.PageData(victim_va >> kPageShift)[3] ^= 0x10;

  // The demand read must detect the mismatch, fetch the good replica, and
  // rewrite the rotted copy.
  EXPECT_EQ(rt.Read<uint64_t>(victim_va), expect);
  EXPECT_GE(rt.stats().checksum_mismatches, 2u) << "same-node retry, then exclusion";
  EXPECT_GE(rt.stats().checksum_heals, 1u);
  EXPECT_EQ(PageChecksum(primary.PageData(victim_va >> kPageShift)),
            primary.Checksum(victim_va >> kPageShift))
      << "the stored copy must have been rewritten, not just re-read around";
}

TEST(ChaosIntegrity, ScrubberRepairsLatentRotWithoutADemandRead) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg = ChaosConfig(2);
  cfg.pm.scrub_pages_per_tick = 64;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;  // 4 granules.
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  // Rot a checksummed copy of a page in the first granule.
  std::vector<int> replicas;
  uint64_t victim_va = 0;
  for (uint64_t p = 0; p < kPagesPerGranule; ++p) {
    uint64_t va = region + p * kPageSize;
    rt.router().ReplicaNodes(va, &replicas);
    if (fabric.node(replicas[0]).store().HasChecksum(va >> kPageShift)) {
      victim_va = va;
      break;
    }
  }
  ASSERT_NE(victim_va, 0u);
  PageStore& store = fabric.node(replicas[0]).store();
  store.PageData(victim_va >> kPageShift)[100] ^= 0x01;

  // Drive background ticks with traffic that never touches the victim's
  // granule: only the scrubber can find the rot.
  uint64_t start = rt.stats().scrub_repairs;
  for (int round = 0; round < 64 && rt.stats().scrub_repairs == start; ++round) {
    for (uint64_t p = kPagesPerGranule; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
  }
  EXPECT_GT(rt.stats().scrub_repairs, start) << "scrubber never found the rot";
  EXPECT_EQ(PageChecksum(store.PageData(victim_va >> kPageShift)),
            store.Checksum(victim_va >> kPageShift));
  EXPECT_GT(rt.stats().scrub_pages, 0u);
}

// -- Gray failures ------------------------------------------------------------

TEST(ChaosGray, SlowNodeIsSuspectedSteeredAroundAndNeverDeclaredDead) {
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  // Node 0 turns gray at 3 ms: alive, answering, but 20x slower.
  plan.specs.push_back({0, FaultKind::kDelay, 1.0, 20.0, 3 * kMs, 60 * kMs});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 5;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  uint64_t rng = 0x1234567;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto sample = [&](std::vector<uint64_t>* lat) {
    uint64_t t0 = rt.clock(0).now();
    volatile uint64_t v = rt.Read<uint64_t>(region + (next() % pages) * kPageSize);
    (void)v;
    lat->push_back(rt.clock(0).now() - t0);
  };

  std::vector<uint64_t> healthy;
  for (int i = 0; i < 500; ++i) {
    sample(&healthy);
  }
  ASSERT_LT(rt.clock(0).now(), 3 * kMs) << "healthy phase ran into the delay window";

  // Cross into the window; a few delayed probe RTTs trip the EWMA.
  rt.DriveRecovery(2 * kMs);
  ASSERT_TRUE(rt.detector() != nullptr);
  EXPECT_TRUE(rt.detector()->gray(0)) << "EWMA should have tripped";
  EXPECT_EQ(rt.router().state(0), NodeState::kSuspect);
  EXPECT_GE(rt.stats().gray_suspects, 1u);

  // Reads steer to the healthy replicas: p99 stays near the healthy p99
  // instead of inflating toward 20x.
  std::vector<uint64_t> gray;
  for (int i = 0; i < 500; ++i) {
    sample(&gray);
  }
  EXPECT_LT(Pct(gray, 0.99), 4 * Pct(healthy, 0.99))
      << "demand p99 did not recover under gray steering";
  EXPECT_GT(rt.stats().degraded_reads, 0u) << "steering should serve non-primary replicas";

  // Slow is not dead: answered (late) probes keep renewing the lease, and a
  // successful op must not clear the latency suspicion either.
  rt.DriveRecovery(10 * kMs);
  EXPECT_NE(rt.router().state(0), NodeState::kDead);
  EXPECT_EQ(rt.stats().nodes_failed, 0u);
  EXPECT_TRUE(rt.detector()->gray(0)) << "still slow => still suspect";
}

TEST(ChaosGray, SuspicionClearsWhenLatencyRecovers) {
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  plan.specs.push_back({0, FaultKind::kDelay, 1.0, 20.0, 0, 4 * kMs});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 6;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 64;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  rt.DriveRecovery(2 * kMs);
  ASSERT_TRUE(rt.detector()->gray(0));

  // Past the window the EWMA decays back under the clear threshold
  // (hysteresis: 2x baseline, vs the 4x trip).
  rt.DriveRecovery(10 * kMs);
  EXPECT_FALSE(rt.detector()->gray(0));
  EXPECT_EQ(rt.router().state(0), NodeState::kLive);
  ASSERT_EQ(rt.stats().nodes_failed, 0u);
}

// -- Partitions ---------------------------------------------------------------

TEST(ChaosPartition, OutboundDropFailsReadsOverToTheReplica) {
  Fabric fabric(CostModel::Default(), 2);
  FaultPlan plan;
  // One-way partition: nothing gets *out* of node 0 (reads), writes land.
  plan.specs.push_back({0, FaultKind::kPartitionOut, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 9;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << cfg.fault_seed;
  EXPECT_GT(fabric.injector().injected_partition_drops(), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(ChaosPartition, InboundDropNeverServesTheStaleCopy) {
  Fabric fabric(CostModel::Default(), 2);
  FaultPlan plan;
  // Nothing gets *into* node 0: every write-back toward it is lost, so its
  // store holds zeros with no checksum. The surviving replica's checksum is
  // the tell — an arrival from node 0 with no checksum installed, while
  // node 1 holds one, is a missed write-back and must be steered around
  // (probe successes keep resetting the strike counter, so the node is
  // *not* reliably declared dead — integrity cannot depend on that).
  plan.specs.push_back({0, FaultKind::kPartitionIn, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = ChaosConfig(2);
  cfg.fault_seed = 10;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << cfg.fault_seed;
  EXPECT_GT(fabric.injector().injected_partition_drops(), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(ChaosPartition, StaleButVerifiedCopyIsDetectedByGeneration) {
  // The nastier partition shape: node 0 is reachable and holds *verified*
  // copies — checksums installed by write-backs that landed before the
  // partition — but misses every write-back after it. Checksum verification
  // alone passes those stale bytes; the per-page write generation is what
  // exposes them (the router's expected generation was bumped by each
  // write-back round node 0 never saw). Recovery stays disabled: detection
  // must not depend on the failure detector ever condemning the node.
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg = ChaosConfig(2);
  cfg.recovery.enabled = false;
  cfg.pm.scrub_pages_per_tick = 64;  // Phase 3: the scrubber heals the laggards.
  cfg.fault_seed = 11;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);

  auto populate_salted = [&](uint64_t salt) {
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Write<uint64_t>(region + p * kPageSize, p ^ salt);
    }
  };
  auto sweep_salted = [&](uint64_t salt) {
    uint64_t errors = 0;
    for (uint64_t p = 0; p < pages; ++p) {
      if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ salt)) {
        ++errors;
      }
    }
    return errors;
  };
  // Node-0 copies that would pass checksum verification but lag the
  // expected write generation — the exact copies this test is about.
  auto stale_verified_on_node0 = [&]() {
    uint64_t n = 0;
    const PageStore& store = fabric.node(0).store();
    for (uint64_t p = 0; p < pages; ++p) {
      uint64_t va = region + p * kPageSize;
      if (store.HasChecksum(va >> kPageShift) &&
          PageIsStale(store, va, rt.router().PageGeneration(va))) {
        ++n;
      }
    }
    return n;
  };

  // Phase 1: healthy fabric. 128 pages over 64 frames: evictions write both
  // replicas back verified, installing checksum + generation on node 0 too.
  populate_salted(0xAAAA);
  ASSERT_EQ(sweep_salted(0xAAAA), 0u);

  // Phase 2: partition node 0 inbound and overwrite everything. Each
  // write-back round bumps the expected generation; node 0 drops the bytes
  // and keeps serving its old — still checksum-valid — phase-1 copies.
  FaultPlan plan;
  plan.specs.push_back({0, FaultKind::kPartitionIn, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  populate_salted(0xBBBB);
  EXPECT_EQ(sweep_salted(0xBBBB), 0u)
      << "a verified-but-stale arrival from node 0 leaked through";
  EXPECT_GT(rt.stats().stale_copies_detected, 0u)
      << "the sweep should have tripped over node 0's lagging copies";
  EXPECT_GT(stale_verified_on_node0(), 0u)
      << "the partition should have left checksum-valid stale copies behind";
  EXPECT_EQ(rt.stats().failed_fetches, 0u);

  // Phase 3: partition lifts. Reads still never see phase-2 ghosts, and the
  // scrubber (driven by the sweeps' background hook) rewrites node 0's
  // laggards with current bytes and generations.
  fabric.set_fault_plan(FaultPlan{});
  uint64_t stale_before = stale_verified_on_node0();
  for (int round = 0; round < 6 && stale_verified_on_node0() > 0; ++round) {
    EXPECT_EQ(sweep_salted(0xBBBB), 0u) << "round " << round;
  }
  EXPECT_LT(stale_verified_on_node0(), stale_before)
      << "scrub repairs should freshen node 0's stale copies";
  EXPECT_GT(rt.stats().scrub_repairs, 0u);
  EXPECT_EQ(sweep_salted(0xBBBB), 0u);
}

TEST(ChaosPartition, TotalPartitionNeverEvictsTheOnlyCopy) {
  // Every replica of every page refuses writes (single node, inbound
  // partition): a dirty page's frame is then the only current copy of the
  // page. The reclaimer must keep such victims resident — clean pages,
  // whose remote copy is current, are the only legal victims — because an
  // eviction would resurface the pre-partition bytes (or zeros) on the
  // refault.
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);  // Phase 1: healthy write-backs land.
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  FaultPlan plan;  // Phase 2: nothing written reaches the node anymore.
  plan.specs.push_back({0, FaultKind::kPartitionIn, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  const uint64_t dirtied = 24;
  for (uint64_t p = 0; p < dirtied; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xFEED);
  }
  // Eviction pressure: sweep the remaining pages twice through 64 frames.
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = dirtied; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
  }
  for (uint64_t p = 0; p < dirtied; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xFEED)
        << "page " << p << " was evicted while its write-back could not land";
  }

  fabric.set_fault_plan(FaultPlan{});  // Phase 3: the partition lifts.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = dirtied; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);  // Background drains cleans.
    }
  }
  for (uint64_t p = 0; p < dirtied; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xFEED);
  }
  for (uint64_t p = dirtied; p < pages; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xD15C0);
  }
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

// Guide that reports the same live segments for every page: drives the
// vectored write-back / action-PTE eviction path without the full
// allocator machinery. Segment 0 covers the test payload at offset 0.
class FixedSegsGuide : public Guide {
 public:
  bool LiveSegments(uint64_t, std::vector<PageSegment>* segs) override {
    segs->assign({{0, 64}, {256, 64}});
    return true;
  }
};

TEST(ChaosPartition, TotalPartitionKeepsVectoredDirtyPagesResident) {
  // The same durability bar for guided (vectored) write-backs: when every
  // replica drops the segment writes, Clean() must neither clear the dirty
  // bit nor record an action vector — an eviction would then install an
  // action PTE whose segments were never written remotely, and the refault
  // would read the pre-partition bytes.
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  FixedSegsGuide guide;
  rt.set_guide(&guide);
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);  // Phase 1: vectored write-backs land.
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);
  ASSERT_GT(rt.stats().vectored_ops, 0u) << "the guide must force the vectored path";

  FaultPlan plan;  // Phase 2: every segment write toward the node drops.
  plan.specs.push_back({0, FaultKind::kPartitionIn, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  const uint64_t dirtied = 24;
  for (uint64_t p = 0; p < dirtied; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xFEED);
  }
  for (int round = 0; round < 2; ++round) {
    for (uint64_t p = dirtied; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
  }
  for (uint64_t p = 0; p < dirtied; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xFEED)
        << "page " << p << ": a vectored clean that landed nowhere licensed eviction";
  }

  fabric.set_fault_plan(FaultPlan{});  // Phase 3: the partition lifts.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = dirtied; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
  }
  for (uint64_t p = 0; p < dirtied; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xFEED);
  }
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

// -- Repair observability + pipelining ----------------------------------------

TEST(ChaosRepair, NoLegalTargetIsCountedAndTraced) {
  // Replication 3 on 3 nodes: after a death every survivor is already in
  // the replica set, so there is nowhere legal to rebuild.
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg = ChaosConfig(3);
  cfg.trace_capacity = 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  fabric.CrashNode(2);
  for (int i = 0; i < 50 && rt.router().state(2) != NodeState::kDead; ++i) {
    rt.DriveRecovery(1'000'000);
  }
  DriveMs(rt, 5);  // Let the repair scan run (and find nowhere to rebuild).
  EXPECT_EQ(rt.router().state(2), NodeState::kDead);
  EXPECT_GT(rt.stats().repair_no_target, 0u);
  EXPECT_GT(rt.tracer().Count(TraceEvent::kRepairNoTarget), 0u);
  EXPECT_EQ(rt.stats().repair_granules, 0u) << "nothing should have been rebuilt";
  // The data is still there — just at reduced redundancy.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

// Rebuild-throughput probe: crash node 0, let detection settle with no app
// load, then drain the whole rebuild unthrottled. The repair stream's cursor
// (the serialized issue/completion frontier of the copy pipeline) is the
// honest throughput measure — a wall-clock span under mixed load is
// dominated by demand traffic queueing behind the repair transfers, which
// costs both depths the same and dilutes the ratio.
uint64_t RebuildSpanNs(size_t pipeline_depth) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg = ChaosConfig(2);
  cfg.local_mem_bytes = 1ULL << 20;
  cfg.recovery.repair.bytes_per_tick = 1ULL << 30;  // Unthrottled drain.
  cfg.recovery.repair.pipeline_depth = pipeline_depth;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 2048;  // 8 MB working set.
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  for (int i = 0; i < 50 && rt.router().state(0) != NodeState::kDead; ++i) {
    rt.DriveRecovery(1'000'000);
  }
  EXPECT_EQ(rt.router().state(0), NodeState::kDead);
  uint64_t start_ns = rt.clock(0).now();
  DriveMs(rt, 1);  // Let the death scan queue the rebuild jobs.
  DriveUntilIdle(rt, 2'000);
  EXPECT_TRUE(rt.RecoveryIdle()) << "repair did not converge (depth " << pipeline_depth << ")";
  EXPECT_GT(rt.stats().repair_granules, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  return rt.repair()->stream_cursor_ns() - start_ns;
}

TEST(ChaosRepair, PipelinedCopiesRebuildAtLeastTwiceAsFastAsSerial) {
  uint64_t serial = RebuildSpanNs(1);
  uint64_t pipelined = RebuildSpanNs(8);
  EXPECT_GE(serial, 2 * pipelined)
      << "serial span " << serial << " ns vs pipelined " << pipelined << " ns";
}

// -- Retry budget -------------------------------------------------------------

TEST(ChaosRetryBudget, UnreachableNodeBurnsBoundedRetriesThenSuppresses) {
  // An exhausted per-core token bucket turns a would-be retry storm into
  // fail-fast: the timeout still feeds the detector its strike (the node is
  // steered around a moment later), but no retry traffic is spent. With a
  // zero-depth bucket every timed-out demand fetch must suppress instead of
  // retrying — fetch_retries stays exactly 0 for the whole run.
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg = ChaosConfig(2);
  cfg.telemetry.check_invariants = true;
  cfg.recovery.retry_burst = 0;
  cfg.recovery.retry_refill_ns = 50 * kMs;  // Nothing refills mid-test.
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  // Partition node 1 away and read a page whose primary copy it holds before
  // any probe notices. That fetch times out; with an empty bucket it is
  // suppressed (and surfaces as a failed fetch — the documented budget
  // semantics). Its strike marks the node suspect, so the following storm
  // steers to the healthy replica without burning a single retry.
  fabric.CrashNode(1);
  std::vector<int> reps;
  uint64_t victim = pages;
  for (uint64_t p = 0; p + 64 < pages; ++p) {  // Tail pages are still cached.
    rt.router().ReplicaNodes(region + p * kPageSize, &reps);
    if (reps[0] == 1) {
      victim = p;
      break;
    }
  }
  ASSERT_LT(victim, pages) << "no granule homed on the partitioned node";
  rt.Read<uint64_t>(region + victim * kPageSize);
  VerifySweep(rt, region, pages);
  EXPECT_GT(rt.stats().fault_retries_suppressed, 0u);
  EXPECT_EQ(rt.stats().fetch_retries, 0u) << "every retry must be suppressed";
  EXPECT_GE(rt.stats().failed_fetches, rt.stats().fault_retries_suppressed);

  // Heal: the node is readmitted and the poisoned (zeroed, clean) pages age
  // out of the cache — after that every read verifies again.
  fabric.RestoreNode(1);
  DriveMs(rt, 20);
  DriveUntilIdle(rt, 100);
  VerifySweep(rt, region, pages);  // Cycle any cached zero page out.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

// -- Multi-seed soak ----------------------------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// One chaos run: a crash window, a gray window, a flaky window, a one-way
// partition window, and continuous wire bit flips plus storage rot — under
// replication or EC — with a mixed read/write load across the whole
// timeline. The liveness faults are scoped so only one node is in trouble
// at a time (that is the redundancy budget replication=2 / m=2 is specified
// to tolerate; overlapping two node-level faults would make data loss the
// *correct* outcome). Integrity faults (flips, rot) hit every node
// throughout. Asserts no read ever returned wrong bytes and no fetch was
// ever abandoned.
void ChaosSoak(uint64_t seed, bool ec) {
  Fabric fabric(CostModel::Default(), ec ? 5 : 3);
  FaultPlan plan;
  plan.specs.push_back({1, FaultKind::kCrash, 1.0, 1.0, 2 * kMs, 11 * kMs});
  plan.specs.push_back({2, FaultKind::kDelay, 1.0, 8.0, 4 * kMs, 14 * kMs});
  plan.specs.push_back({2, FaultKind::kTransient, 0.02, 1.0, 14'500'000, 17 * kMs});
  plan.specs.push_back({0, FaultKind::kPartitionOut, 1.0, 1.0, 18 * kMs, 20'500'000});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.01, 1.0, 0, UINT64_MAX});
  // Rot scoped to the redundancy budget: under replication=2, rot on a live
  // copy while its only partner is crashed, flapping, or partitioned is
  // *two* concurrent faults on one page — data loss would be the specified
  // outcome, so rot runs only in the node-fault-free gap between node 1's
  // readmission and node 2's transient window. (Node 2's delay window
  // overlaps, but gray nodes stay readable.) EC with m=2 tolerates the
  // double fault, so there it runs across every window.
  plan.specs.push_back({-1, FaultKind::kStorageRot, 0.0005, 1.0,
                        ec ? 1 * kMs : 12 * kMs, ec ? UINT64_MAX : 14'500'000});
  fabric.set_fault_plan(plan);

  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.recovery.enabled = true;
  cfg.fault_seed = seed;
  cfg.pm.scrub_pages_per_tick = 64;
  if (ec) {
    cfg.ec.enabled = true;
    cfg.ec.k = 2;
    cfg.ec.m = 2;
  } else {
    cfg.replication = 2;
  }
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  // Mixed load until the whole fault timeline has played out.
  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  uint64_t ops = 0;
  while (rt.clock(0).now() < 22 * kMs && ops < 600'000) {
    uint64_t p = next() % pages;
    if (next() % 4 == 0) {
      rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
    } else if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++wrong_reads;
    }
    ++ops;
  }
  // Settle: every window over, flapped nodes re-admitted and refilled.
  DriveMs(rt, 10);
  DriveUntilIdle(rt, 100);

  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed << (ec ? " (ec)" : " (replication)");
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u)
      << "fault_seed=" << seed << (ec ? " (ec)" : " (replication)");
  EXPECT_EQ(rt.stats().failed_fetches, 0u)
      << "fault_seed=" << seed << (ec ? " (ec)" : " (replication)");
  EXPECT_GT(fabric.injector().injected_faults(), 0u) << "fault_seed=" << seed;
}

TEST(ChaosSoak, ReplicationSurvives32SeedsOfMixedFaults) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    ChaosSoak(s, /*ec=*/false);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

TEST(ChaosSoak, ErasureCodingSurvives32SeedsOfMixedFaults) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    ChaosSoak(s, /*ec=*/true);
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
}

}  // namespace
}  // namespace dilos
