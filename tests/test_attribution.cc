// Per-fault critical-path attribution + per-tenant SLO engine
// (src/telemetry/attribution.h, src/telemetry/slo.{h,cc}, and the stamping
// in src/dilos/runtime.cc):
//
//  - The tiling invariant: for every committed fault, the on-path phase sum
//    equals the measured end-to-end latency within 1% (exact by construction
//    in the simulator) — checked across the blocking, pipelined-depth-8,
//    EC-degraded, tier-hit, and retry-storm fault paths.
//  - Phase presence: each path lights up exactly the phases its mechanism
//    implies (kPark only when pipelined, kEcDecode only degraded, ...).
//  - The tier-corrupt fallback is ONE fault: a single kFault span (and a
//    single attribution commit) covers the failed tier attempt plus the
//    remote retry.
//  - SLO engine unit behavior: window rollover, burn-rate math, edge-
//    triggered multi-window alerting with hysteresis, budget exhaustion.
//  - Runtime integration: a breach records TraceEvent::kSloBreach and forces
//    a flight-recorder dump carrying the attribution snapshot; enabling
//    attribution + SLO scoring leaves RuntimeStats bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/telemetry/attribution.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/slo.h"

namespace dilos {
namespace {

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xA77B1);
  }
  rt.Quiesce();
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  uint64_t bad = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xA77B1)) {
      ++bad;
    }
  }
  rt.Quiesce();
  return bad;
}

const FaultAttribution& Attr(const DilosRuntime& rt) {
  const FaultAttribution* a = rt.telemetry()->attribution();
  EXPECT_NE(a, nullptr);
  return *a;
}

// The headline gate: every committed fault tiled exactly (violations stay
// zero and the worst residual is within the 1% tolerance).
void ExpectTilesExactly(const DilosRuntime& rt, uint64_t min_commits) {
  const FaultAttribution& a = Attr(rt);
  EXPECT_GE(a.commits(), min_commits);
  EXPECT_EQ(a.sum_violations(), 0u)
      << "worst residual " << a.worst_residual_ppm() << " ppm";
  EXPECT_LE(a.worst_residual_ppm(), FaultAttribution::kTolerancePpm);
}

// ---------------------------------------------------------------------------
// FaultSlice / FaultAttribution units
// ---------------------------------------------------------------------------

TEST(FaultSlice, OffPathPhasesAreExcludedFromTheSum) {
  FaultSlice s;
  s.Add(FaultPhase::kHandler, 100);
  s.Add(FaultPhase::kWire, 900);
  s.Add(FaultPhase::kStall, 5'000);  // Off-path: concurrent with the wire.
  s.Add(FaultPhase::kHeal, 7'000);   // Off-path: posted without advancing.
  EXPECT_EQ(s.OnPathSumNs(), 1'000u);
  EXPECT_FALSE(FaultPhaseOnPath(FaultPhase::kStall));
  EXPECT_FALSE(FaultPhaseOnPath(FaultPhase::kHeal));
  EXPECT_TRUE(FaultPhaseOnPath(FaultPhase::kWire));
}

TEST(FaultAttribution, CommitChecksTheTilingInvariant) {
  FaultAttribution a;
  FaultSlice s;
  s.Add(FaultPhase::kWire, 1'000);
  a.Commit(/*tenant=*/0, s, /*e2e_ns=*/1'000);  // Exact.
  a.Commit(/*tenant=*/0, s, /*e2e_ns=*/1'005);  // 0.5%: within tolerance.
  EXPECT_EQ(a.sum_violations(), 0u);
  a.Commit(/*tenant=*/0, s, /*e2e_ns=*/1'200);  // 16.7% off: a violation.
  EXPECT_EQ(a.commits(), 3u);
  EXPECT_EQ(a.sum_violations(), 1u);
  EXPECT_GT(a.worst_residual_ppm(), FaultAttribution::kTolerancePpm);
  EXPECT_EQ(a.TopContributor(0), FaultPhase::kWire);
  EXPECT_EQ(a.phase(0, FaultPhase::kWire).count(), 3u);
}

TEST(FaultAttribution, PromRowsCarryTenantAndPhaseLabels) {
  FaultAttribution a;
  FaultSlice s;
  s.Add(FaultPhase::kWire, 2'000);
  s.Add(FaultPhase::kMap, 500);
  a.Commit(/*tenant=*/3, s, 2'500);
  std::string prom = a.ToProm();
  EXPECT_NE(prom.find("dilos_fault_phase_ns{tenant=\"3\",phase=\"wire\""),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_fault_phase_ns_sum{tenant=\"3\",phase=\"map\"} 500"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_fault_e2e_ns_count{tenant=\"3\"} 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tiling invariant across the five fault paths
// ---------------------------------------------------------------------------

TEST(AttributionInvariant, BlockingPathTilesExactly) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.telemetry.attribution = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  // Readahead absorbs most of the sequential sweep; only the demand faults
  // that actually ran the blocking path commit slices.
  ExpectTilesExactly(rt, /*min_commits=*/16);
  const FaultAttribution& a = Attr(rt);
  EXPECT_GT(a.TotalNs(FaultPhase::kHandler), 0u);
  EXPECT_GT(a.TotalNs(FaultPhase::kWire), 0u);
  EXPECT_GT(a.TotalNs(FaultPhase::kMap), 0u);
  EXPECT_EQ(a.TotalNs(FaultPhase::kPark), 0u) << "no pipeline, no park";
  EXPECT_EQ(a.TotalNs(FaultPhase::kStall), 0u);
}

TEST(AttributionInvariant, PipelinedDepth8TilesExactly) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.fault_pipeline.enabled = true;
  cfg.fault_pipeline.depth = 8;
  cfg.telemetry.attribution = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  EXPECT_EQ(rt.stats().fault_inflight, 0u);
  ExpectTilesExactly(rt, /*min_commits=*/64);
  const FaultAttribution& a = Attr(rt);
  EXPECT_GT(a.TotalNs(FaultPhase::kPark), 0u)
      << "parked fibers must attribute their wait";
  EXPECT_GT(rt.stats().fault_parks, 0u);
}

TEST(AttributionInvariant, EcDegradedPathTilesExactly) {
  Fabric fabric(CostModel::Default(), 6);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.recovery.enabled = true;
  cfg.ec.enabled = true;
  cfg.ec.k = 4;
  cfg.ec.m = 2;
  cfg.telemetry.attribution = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  // Enough pages for several (4, 2) stripes so the crashed node is sure to
  // hold data members, not just parity.
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(1);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  ASSERT_GT(rt.stats().ec_degraded_reads, 0u) << "test must exercise decode";
  ExpectTilesExactly(rt, /*min_commits=*/64);
  EXPECT_GT(Attr(rt).TotalNs(FaultPhase::kEcDecode), 0u);
}

TEST(AttributionInvariant, TierHitPathTilesExactly) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.tier.enabled = true;
  cfg.tier.capacity_bytes = 32ULL << 20;
  cfg.telemetry.attribution = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  ASSERT_GT(rt.stats().tier_hits, 0u);
  ExpectTilesExactly(rt, /*min_commits=*/64);
  EXPECT_GT(Attr(rt).TotalNs(FaultPhase::kDecompress), 0u);
}

TEST(AttributionInvariant, RetryStormTilesExactly) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.telemetry.attribution = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  ASSERT_GT(rt.stats().fetch_retries, 0u) << "test must exercise the storm";
  ExpectTilesExactly(rt, /*min_commits=*/64);
  const FaultAttribution& a = Attr(rt);
  EXPECT_GT(a.TotalNs(FaultPhase::kBackoff), 0u);
  EXPECT_GT(a.TotalNs(FaultPhase::kWire), 0u)
      << "timed-out attempts bill their full op timeout to the wire";
}

// ---------------------------------------------------------------------------
// Tier-corrupt fallback: one fault, one span, one commit
// ---------------------------------------------------------------------------

TEST(AttributionInvariant, TierCorruptFallbackIsOneFaultWithOneSpan) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.tier.enabled = true;
  cfg.tier.capacity_bytes = 32ULL << 20;
  cfg.trace_capacity = 1 << 16;
  cfg.telemetry.attribution = true;
  cfg.telemetry.span_capacity = 1 << 15;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  // Deterministic in-DRAM rot: pick a clean tier-resident page (its remote
  // copy is current) and smash its compressed blob.
  std::vector<uint64_t> dirty_vas;
  rt.tier()->CollectDirty(rt.tier()->stored_pages(), &dirty_vas);
  uint64_t victim = 0;
  for (uint64_t p = 0; p < pages && victim == 0; ++p) {
    uint64_t va = region + p * kPageSize;
    if (PteTagOf(rt.page_table().Get(va)) == PteTag::kTier &&
        std::find(dirty_vas.begin(), dirty_vas.end(), va) == dirty_vas.end()) {
      victim = va;
    }
  }
  ASSERT_NE(victim, 0u);
  uint32_t n = 0;
  const uint8_t* blob = rt.tier()->BlobData(victim, &n);
  ASSERT_NE(blob, nullptr);
  std::memset(const_cast<uint8_t*>(blob), 0x80, n);

  uint64_t commits_before = Attr(rt).commits();
  uint64_t p = (victim - region) / kPageSize;
  EXPECT_EQ(rt.Read<uint64_t>(victim), p ^ 0xA77B1);
  EXPECT_EQ(rt.stats().tier_corrupt_drops, 1u);

  // One fault span covers the failed tier attempt AND the remote retry; the
  // retry's fetch-attempt span nests inside it instead of starting a second
  // root. Before the fault-scope fix this was two kFault spans.
  uint32_t fault_spans = 0;
  SpanRecord fault{};
  bool attempt_nested = false;
  for (const SpanRecord& s : rt.tracer().SpanSnapshot()) {
    if (s.kind == SpanKind::kFault && s.page_va == victim) {
      ++fault_spans;
      fault = s;
    }
  }
  ASSERT_EQ(fault_spans, 1u) << "retried demand fetch must not restart the span";
  for (const SpanRecord& s : rt.tracer().SpanSnapshot()) {
    if (s.kind == SpanKind::kFetchAttempt && s.page_va == victim &&
        s.parent == fault.id) {
      attempt_nested = true;
      EXPECT_GE(s.begin_ns, fault.begin_ns);
      EXPECT_LE(s.end_ns, fault.end_ns);
    }
  }
  EXPECT_TRUE(attempt_nested) << "the remote retry must nest under the fault span";

  // And exactly one attribution commit, whose slice spans both attempts
  // (handler charged twice — once per handler entry — still tiles exactly).
  EXPECT_EQ(Attr(rt).commits(), commits_before + 1);
  ExpectTilesExactly(rt, commits_before + 1);
}

// ---------------------------------------------------------------------------
// SLO engine units
// ---------------------------------------------------------------------------

SloConfig SmallWindows() {
  SloConfig cfg;
  cfg.enabled = true;
  cfg.fast_window_faults = 64;   // 8 buckets of 8.
  cfg.slow_window_faults = 256;  // 8 buckets of 32.
  return cfg;
}

TEST(SloEngine, InactiveObjectiveScoresNothing) {
  SloEngine slo(SmallWindows());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(slo.Observe(/*tenant=*/0, /*latency_ns=*/1'000'000, /*now_ns=*/i));
  }
  EXPECT_EQ(slo.faults(0), 0u);
  EXPECT_EQ(slo.alerts_fired(0), 0u);
  EXPECT_EQ(slo.burn_rate(0, /*fast=*/true), 0.0);
}

TEST(SloEngine, BurnRateIsBadFractionOverAllowed) {
  SloConfig cfg = SmallWindows();
  SloEngine slo(cfg);
  slo.SetObjective(0, SloObjective{90.0, 1'000});  // p90 < 1µs: allowed = 0.10.
  // 4 bad in 40 observations = bad fraction 0.10 = burn 1.0.
  for (int i = 0; i < 40; ++i) {
    slo.Observe(0, i % 10 == 0 ? 2'000 : 500, /*now_ns=*/i);
  }
  EXPECT_EQ(slo.faults(0), 40u);
  EXPECT_EQ(slo.bad_faults(0), 4u);
  EXPECT_NEAR(slo.burn_rate(0, /*fast=*/true), 1.0, 1e-9);
  // Burning at exactly the allowed rate consumes the budget at 1.0x.
  EXPECT_NEAR(slo.budget_used(0), 1.0, 1e-9);
}

TEST(SloEngine, AlertFiresOnEdgeAndNotAgainWhileActive) {
  SloEngine slo(SmallWindows());
  slo.SetObjective(2, SloObjective{99.0, 10'000});
  // Every fault bad: burn = 1.0/0.01 = 100 >= both thresholds — the first
  // observation fires, subsequent ones must not re-fire.
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    fired += slo.Observe(2, 50'000, /*now_ns=*/i) ? 1 : 0;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(slo.alerts_fired(2), 1u);
  EXPECT_TRUE(slo.alert_active(2));
  EXPECT_TRUE(slo.budget_exhausted(2));
}

TEST(SloEngine, WindowRolloverClearsWithHysteresisAndReArms) {
  SloConfig cfg = SmallWindows();
  SloEngine slo(cfg);
  slo.SetObjective(0, SloObjective{99.0, 10'000});
  ASSERT_TRUE(slo.Observe(0, 50'000, 0)) << "all-bad stream fires immediately";

  // A long good stream rotates the bad observations out of both windows;
  // the alert clears only once the fast burn drops below
  // clear_ratio * fast_burn_alert (hysteresis), not at the first good fault.
  slo.Observe(0, 100, 1);
  EXPECT_TRUE(slo.alert_active(0)) << "one good fault must not clear the alert";
  int i = 2;
  for (; i < 2'000 && slo.alert_active(0); ++i) {
    slo.Observe(0, 100, i);
  }
  EXPECT_FALSE(slo.alert_active(0)) << "rollover must eventually clear";
  EXPECT_LT(slo.burn_rate(0, true), cfg.fast_burn_alert * cfg.clear_ratio);

  // Regression returns: the alert re-arms and fires a second time.
  bool refired = false;
  for (int j = 0; j < 300 && !refired; ++j) {
    refired = slo.Observe(0, 50'000, i + j);
  }
  EXPECT_TRUE(refired);
  EXPECT_EQ(slo.alerts_fired(0), 2u);
}

TEST(SloEngine, BudgetExhaustionIsLifetimeNotWindowed) {
  SloEngine slo(SmallWindows());
  slo.SetObjective(1, SloObjective{50.0, 1'000});  // Allowed = 0.5.
  // 6 bad / 10 total = 0.6 bad fraction -> budget_used 1.2: blown.
  for (int i = 0; i < 10; ++i) {
    slo.Observe(1, i < 6 ? 5'000 : 100, i);
  }
  EXPECT_NEAR(slo.budget_used(1), 1.2, 1e-9);
  EXPECT_TRUE(slo.budget_exhausted(1));
  // A tenant under its objective is not exhausted.
  slo.SetObjective(3, SloObjective{50.0, 1'000});
  for (int i = 0; i < 10; ++i) {
    slo.Observe(3, i < 2 ? 5'000 : 100, i);
  }
  EXPECT_FALSE(slo.budget_exhausted(3));
}

TEST(SloEngine, PromRowsOnlyForActiveObjectives) {
  SloEngine slo(SmallWindows());
  slo.SetObjective(4, SloObjective{99.0, 20'000});
  slo.Observe(4, 50'000, 1);
  std::string prom = slo.ToProm();
  EXPECT_NE(prom.find("dilos_slo_faults_total{tenant=\"4\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("dilos_slo_threshold_ns{tenant=\"4\"} 20000"), std::string::npos);
  EXPECT_EQ(prom.find("tenant=\"5\""), std::string::npos)
      << "tenants without an objective emit no rows";
}

// ---------------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------------

TEST(SloRuntime, BreachRecordsTraceEventAndForcesFlightDump) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.trace_capacity = 1 << 14;
  cfg.telemetry.slo.enabled = true;
  cfg.telemetry.slo.fast_window_faults = 64;
  cfg.telemetry.slo.slow_window_faults = 256;
  // A 1 ns threshold marks every demand fault bad: the alert fires as soon
  // as both windows carry data.
  cfg.telemetry.slo.default_objective = SloObjective{99.0, 1};
  cfg.telemetry.flight_capacity = 256;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  const SloEngine* slo = rt.telemetry()->slo();
  ASSERT_NE(slo, nullptr);
  EXPECT_GE(slo->alerts_fired(-1), 1u);
  EXPECT_GE(rt.tracer().Count(TraceEvent::kSloBreach), 1u);
  const FlightRecorder* fr = rt.telemetry()->flight();
  ASSERT_NE(fr, nullptr);
  EXPECT_GE(fr->dumps(), 1u);
  EXPECT_NE(fr->last_dump().find("trigger=slo-breach"), std::string::npos);
  EXPECT_NE(fr->last_dump().find("fault attribution"), std::string::npos)
      << "the breach dump must carry the attribution snapshot";
  EXPECT_NE(fr->last_dump().find("slo engine"), std::string::npos);
}

TEST(SloRuntime, TenantObjectiveInstalledByCreateTenant) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.tenants.enabled = true;
  cfg.telemetry.slo.enabled = true;
  cfg.telemetry.slo.fast_window_faults = 64;
  cfg.telemetry.slo.slow_window_faults = 256;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  TenantSpec spec;
  spec.name = "latency-sensitive";
  spec.slo = SloObjective{99.0, 1};  // Everything is bad: must alert.
  int t = rt.CreateTenant(spec);
  ASSERT_GE(t, 0);
  const SloEngine* slo = rt.telemetry()->slo();
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->objective(t).threshold_ns, 1u);

  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize, t);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_GT(slo->faults(t), 0u) << "faults must score against the owning tenant";
  EXPECT_GE(slo->alerts_fired(t), 1u);
  EXPECT_EQ(slo->faults(-1), 0u) << "untenanted bucket stays silent";
}

RuntimeStats RunObservedWorkload(bool observe) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.fault_pipeline.enabled = true;
  cfg.fault_pipeline.depth = 4;
  if (observe) {
    cfg.telemetry.attribution = true;
    cfg.telemetry.slo.enabled = true;
    cfg.telemetry.slo.fast_window_faults = 64;
    cfg.telemetry.slo.slow_window_faults = 256;
    // Deliberately breach-happy: even alert firing must not perturb the sim.
    cfg.telemetry.slo.default_objective = SloObjective{99.0, 1};
    cfg.telemetry.flight_capacity = 128;
  }
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p * 7);
  }
  uint64_t rng = 0x5EED5;
  for (int i = 0; i < 4'000; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    (void)rt.Read<uint64_t>(region + (rng % pages) * kPageSize);
  }
  rt.Quiesce();
  RuntimeStats out = rt.stats();
  out.fault_breakdown.set_distributions(nullptr);  // Normalize the copy.
  return out;
}

TEST(SloRuntime, AttributionAndSloAreObservationOnly) {
  RuntimeStats off = RunObservedWorkload(false);
  RuntimeStats on = RunObservedWorkload(true);
  EXPECT_EQ(std::memcmp(&off, &on, sizeof(RuntimeStats)), 0)
      << "attribution/SLO-on run diverged:\n"
      << off.ToString() << "\nvs\n"
      << on.ToString();
}

}  // namespace
}  // namespace dilos
