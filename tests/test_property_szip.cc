// Parameterized property tests of the szip codec: exact round trips over a
// sweep of sizes and entropy profiles, on host buffers and through far
// memory, plus ratio and framing invariants.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/apps/szip.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

enum class Profile { kZeros, kRuns, kText, kRandom, kAlternating };

std::vector<uint8_t> MakeData(Profile profile, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  switch (profile) {
    case Profile::kZeros:
      break;
    case Profile::kRuns:
      for (size_t i = 0; i < n; ++i) {
        data[i] = static_cast<uint8_t>('a' + (i / 97) % 5);
      }
      break;
    case Profile::kText:
      for (size_t i = 0; i < n; ++i) {
        data[i] = (i % 90 < 70) ? static_cast<uint8_t>('a' + (i * 7) % 26)
                                : static_cast<uint8_t>(rng.Next());
      }
      break;
    case Profile::kRandom:
      for (size_t i = 0; i < n; ++i) {
        data[i] = static_cast<uint8_t>(rng.Next());
      }
      break;
    case Profile::kAlternating:
      for (size_t i = 0; i < n; ++i) {
        data[i] = (i & 1) ? 0xAA : 0x55;
      }
      break;
  }
  return data;
}

using SzipParam = std::tuple<Profile, size_t>;

class SzipRoundTrip : public ::testing::TestWithParam<SzipParam> {};

TEST_P(SzipRoundTrip, HostBufferExact) {
  auto [profile, n] = GetParam();
  std::vector<uint8_t> src = MakeData(profile, n, 42);
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  std::vector<uint8_t> back;
  ASSERT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), n);
  ASSERT_EQ(back, src);
}

TEST_P(SzipRoundTrip, CompressionRatioSane) {
  auto [profile, n] = GetParam();
  if (n < 256) {
    GTEST_SKIP() << "ratio not meaningful for tiny inputs";
  }
  std::vector<uint8_t> src = MakeData(profile, n, 43);
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  switch (profile) {
    case Profile::kZeros:
    case Profile::kAlternating:
      EXPECT_LT(comp.size(), n / 10);  // Trivially compressible.
      break;
    case Profile::kRuns:
      EXPECT_LT(comp.size(), n / 2);
      break;
    case Profile::kText:
      EXPECT_LT(comp.size(), n + n / 8);  // Never catastrophic expansion.
      break;
    case Profile::kRandom:
      EXPECT_LT(comp.size(), n + n / 8 + 16);  // Bounded overhead on noise.
      break;
  }
}

TEST_P(SzipRoundTrip, ThroughFarMemoryExact) {
  auto [profile, n] = GetParam();
  if (n < 64) {
    GTEST_SKIP() << "far path exercises block framing; trivial below a block";
  }
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 256 * 1024;  // Pressure during the stream.
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  std::vector<uint8_t> src = MakeData(profile, n, 44);
  uint64_t s = rt.AllocRegion(n);
  rt.WriteBytes(s, src.data(), n);
  uint64_t d = rt.AllocRegion(2 * n + 4096);
  uint64_t b = rt.AllocRegion(n + 4096);
  SzipFar szip(rt);
  SzipResult c = szip.Compress(s, n, d);
  SzipResult dec = szip.Decompress(d, c.out_bytes, b);
  ASSERT_EQ(dec.out_bytes, n);
  std::vector<uint8_t> back(n);
  rt.ReadBytes(b, back.data(), n);
  ASSERT_EQ(back, src);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SzipRoundTrip,
    ::testing::Combine(::testing::Values(Profile::kZeros, Profile::kRuns, Profile::kText,
                                         Profile::kRandom, Profile::kAlternating),
                       ::testing::Values(size_t{1}, size_t{255}, size_t{4096}, size_t{65536},
                                         size_t{200000})));

TEST(SzipEdge, MatchAtBlockTail) {
  // A match whose extension runs exactly to the end of the input.
  std::vector<uint8_t> src;
  for (int i = 0; i < 100; ++i) {
    src.push_back(static_cast<uint8_t>(i));
  }
  src.insert(src.end(), src.begin(), src.begin() + 100);  // Exact repeat.
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  std::vector<uint8_t> back;
  ASSERT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), src.size());
  EXPECT_EQ(back, src);
  EXPECT_LT(comp.size(), 140u);  // The repeat collapsed into one match.
}

TEST(SzipEdge, OverlappingMatchDistanceOne) {
  // "aaaa..." produces offset-1 overlapping copies — the classic LZ77 edge.
  std::vector<uint8_t> src(1000, 'a');
  src[0] = 'b';
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  std::vector<uint8_t> back;
  ASSERT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), src.size());
  EXPECT_EQ(back, src);
}

TEST(SzipEdge, TruncatedStreamFailsCleanly) {
  std::vector<uint8_t> src = MakeData(Profile::kText, 5000, 45);
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  for (size_t cut : {size_t{1}, comp.size() / 2, comp.size() - 1}) {
    std::vector<uint8_t> back;
    size_t got = SzipDecompressBlock(comp.data(), cut, &back);
    EXPECT_NE(got, src.size()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dilos
