// Tests for the recovery subsystem (src/recovery): failure detection via op
// timeouts and heartbeat probes, automatic re-replication of degraded
// granules, spare-node adoption, and degraded-mode routing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/recovery/failure_detector.h"
#include "src/recovery/repair_manager.h"

namespace dilos {
namespace {

DilosConfig RecoveryConfig(int replication, int spare_nodes = 0) {
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = replication;
  cfg.recovery.enabled = true;
  cfg.recovery.spare_nodes = spare_nodes;
  return cfg;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++errors;
    }
  }
  return errors;
}

// Drives recovery until the repair queue drains (bounded by `max_ms`).
void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 50) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

TEST(FailureDetector, OpTimeoutsMarkCrashedNodeDeadWithoutOracle) {
  Fabric fabric(CostModel::Default(), 2);
  DilosRuntime rt(fabric, RecoveryConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);  // Physical crash; nobody calls FailNode().
  ASSERT_EQ(rt.router().state(0), NodeState::kLive) << "crash must not be known yet";

  // Demand fetches toward the crashed node time out, strike it dead, and
  // fail over to the replica — the sweep sees no corruption.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.router().state(0), NodeState::kDead);
  EXPECT_GT(rt.stats().op_timeouts, 0u);
  EXPECT_GT(rt.stats().fetch_retries, 0u);
  EXPECT_GT(rt.stats().degraded_reads, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
  EXPECT_EQ(rt.stats().nodes_failed, 1u);
}

TEST(FailureDetector, HeartbeatProbesDetectCrashWithoutAnyTraffic) {
  Fabric fabric(CostModel::Default(), 2);
  DilosRuntime rt(fabric, RecoveryConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 64;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(1);
  // No application traffic at all: probes alone must notice.
  rt.DriveRecovery(2'000'000);
  EXPECT_EQ(rt.router().state(1), NodeState::kDead);
  EXPECT_GT(rt.stats().probes_sent, 0u);
  EXPECT_GT(rt.stats().probe_misses, 0u);
}

TEST(FailureDetector, SuspectRecoversOnSuccessfulProbe) {
  Fabric fabric(CostModel::Default(), 2);
  RuntimeStats stats;
  ShardRouter router(fabric, 1, 2, false);
  FailureDetectorConfig cfg;
  cfg.dead_after = 5;
  FailureDetector det(fabric, router, stats, nullptr, cfg);

  det.OnOpTimeout(0, 1'000);
  EXPECT_EQ(router.state(0), NodeState::kSuspect);
  det.OnOpSuccess(0, 2'000);  // One good op clears the suspicion.
  EXPECT_EQ(router.state(0), NodeState::kLive);
}

TEST(FailureDetector, ReadWithRetryBacksOffAndGivesUp) {
  Fabric fabric(CostModel::Default(), 1);
  RuntimeStats stats;
  ShardRouter router(fabric, 1, 1, false);
  FailureDetector det(fabric, router, stats, nullptr);
  fabric.CrashNode(0);

  QueuePair* qp = fabric.CreateQp(0);
  uint8_t buf[64];
  uint64_t cursor = 0;
  Completion c = det.ReadWithRetry(qp, 0, reinterpret_cast<uint64_t>(buf), kFarBase, 64, &cursor);
  EXPECT_EQ(c.status, WcStatus::kTimeout);
  // max_retries+1 attempts, each a full op timeout, plus exponential backoff.
  const FailureDetectorConfig& cfg = det.config();
  uint64_t min_elapsed = (cfg.max_retries + 1) * fabric.cost().rdma_op_timeout_ns;
  EXPECT_GE(cursor, min_elapsed);
  EXPECT_EQ(stats.op_timeouts, cfg.max_retries + 1);
  EXPECT_EQ(router.state(0), NodeState::kDead);
}

TEST(RepairManager, RestoresReplicationOnSurvivor) {
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, RecoveryConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  rt.DriveRecovery(2'000'000);  // Detect via probes.
  ASSERT_EQ(rt.router().state(0), NodeState::kDead);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());

  EXPECT_GT(rt.stats().repairs_issued, 0u);
  EXPECT_GT(rt.stats().repair_granules, 0u);
  EXPECT_GT(rt.stats().repair_pages, 0u);
  // Every granule ever written is back at full redundancy.
  for (uint64_t g : rt.router().written_granules()) {
    EXPECT_EQ(rt.router().LiveReplicaCount(g << kShardGranuleShift), 2) << g;
  }
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

TEST(RepairManager, SpareNodeIsAdoptedAndBecomesLive) {
  // Three nodes but one is a spare: placement uses only nodes 0 and 1.
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, RecoveryConfig(2, /*spare_nodes=*/1),
                  std::make_unique<NullPrefetcher>());
  ASSERT_EQ(rt.router().active_nodes(), 2);
  ASSERT_TRUE(rt.router().is_spare(2));
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  // Spares take no hashed traffic; only the detector's 8-byte probe at
  // kFarBase may have materialized a page there.
  ASSERT_LE(fabric.node(2).store().page_count(), 1u);

  fabric.CrashNode(0);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(0), NodeState::kDead);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());

  // The spare was filled and promoted to a live replica.
  EXPECT_GT(fabric.node(2).store().page_count(), 0u);
  EXPECT_EQ(rt.router().state(2), NodeState::kLive);
  for (uint64_t g : rt.router().written_granules()) {
    EXPECT_EQ(rt.router().LiveReplicaCount(g << kShardGranuleShift), 2) << g;
  }
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
}

TEST(RepairManager, DoubleFailureAfterRepairLosesNothing) {
  // The acceptance scenario: replication=2 over 3 nodes. Node A crashes, is
  // detected (no FailNode), repair restores two live replicas everywhere;
  // then node B crashes, and a full sweep still reads every value back.
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, RecoveryConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);  // Degraded but correct.
  ASSERT_EQ(rt.router().state(0), NodeState::kDead);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());
  for (uint64_t g : rt.router().written_granules()) {
    ASSERT_EQ(rt.router().LiveReplicaCount(g << kShardGranuleShift), 2) << g;
  }

  fabric.CrashNode(1);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(1), NodeState::kDead);
  // Only one node survives: everything must still verify from it.
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
  EXPECT_EQ(rt.stats().nodes_failed, 2u);
}

TEST(RepairManager, PickTargetBreaksTiesTowardLessLoadedNode) {
  // Four nodes, replication=2, telemetry metrics on: a single degraded
  // granule has two equally-eligible rebuild targets (neither a spare,
  // neither with rebuilds in flight), so PickTarget falls through to the
  // fabric load signal (bytes moved, then p99 RTT) from MetricsRegistry.
  Fabric fabric(CostModel::Default(), 4);
  DilosConfig cfg = RecoveryConfig(2);
  cfg.local_mem_bytes = 16 * kPageSize;  // Force write-back of the granule.
  cfg.telemetry.metrics = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  // Exactly one granule of far data: one repair, one PickTarget decision.
  uint64_t region = rt.AllocRegion(kPagesPerGranule * kPageSize);
  for (uint64_t p = 0; p < kPagesPerGranule; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  ASSERT_EQ(rt.router().written_granules().size(), 1u);

  std::vector<int> replicas;
  rt.router().ReplicaNodes(region, &replicas);
  ASSERT_EQ(replicas.size(), 2u);
  std::vector<int> candidates;
  for (int n = 0; n < 4; ++n) {
    if (n != replicas[0] && n != replicas[1]) {
      candidates.push_back(n);
    }
  }
  ASSERT_EQ(candidates.size(), 2u);
  // Make the first candidate look like the hot node: far more bytes moved
  // than any organic traffic (probes, the repair copy) will generate.
  ASSERT_NE(rt.metrics(), nullptr);
  for (int i = 0; i < 64; ++i) {
    rt.metrics()->OnOp(candidates[0], QpClass::kOther, /*is_write=*/false, 1 << 20, 200'000,
                       /*ok=*/true, /*timed_out=*/false);
  }

  fabric.CrashNode(replicas[0]);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(replicas[0]), NodeState::kDead);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());

  std::vector<int> after;
  rt.router().ReplicaNodes(region, &after);
  EXPECT_NE(std::find(after.begin(), after.end(), candidates[1]), after.end())
      << "rebuild must land on the less-loaded candidate";
  EXPECT_EQ(std::find(after.begin(), after.end(), candidates[0]), after.end())
      << "the hot node must lose the tiebreak";
}

TEST(DegradedMode, WriteQpsSkipDeadAndIncludeRebuildTarget) {
  Fabric fabric(CostModel::Default(), 3);
  ShardRouter router(fabric, 1, 2, false);
  // Find a granule homed on node 0 (replicas {0, 1}).
  uint64_t va = kFarBase;
  while (router.NodeOf(va) != 0) {
    va += kShardGranuleBytes;
  }
  std::vector<QueuePair*> qps;
  std::vector<int> nodes;
  router.WriteQps(0, CommChannel::kManager, va, &qps, &nodes);
  ASSERT_EQ(nodes.size(), 2u);

  router.MarkDead(0);
  router.WriteQps(0, CommChannel::kManager, va, &qps, &nodes);
  ASSERT_EQ(nodes.size(), 1u) << "dead replica must drop out of the fan-out";
  EXPECT_EQ(nodes[0], 1);
  EXPECT_EQ(router.LiveReplicaCount(va), 1);

  // A rebuild onto node 2 receives writes immediately...
  router.BeginRebuild(ShardRouter::GranuleOf(va), {2, 1}, 2);
  router.WriteQps(0, CommChannel::kManager, va, &qps, &nodes);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 2);
  // ...but serves no reads until the copy commits.
  ShardRouter::ReadTarget t = router.PickRead(0, CommChannel::kFault, va);
  EXPECT_EQ(t.node, 1);
  EXPECT_TRUE(t.degraded);
  router.CommitRebuild(ShardRouter::GranuleOf(va));
  t = router.PickRead(0, CommChannel::kFault, va);
  EXPECT_EQ(t.node, 2);
  EXPECT_FALSE(t.degraded);
  EXPECT_EQ(router.LiveReplicaCount(va), 2);
}

TEST(Readmission, RestoredNodeIsRefilledBeforeServingReads) {
  // Two nodes, R = 2: when node 0 dies there is no repair target, so its
  // granules stay degraded. Fabric::RestoreNode brings it back with a stale
  // store (it missed every write-back while dead); a probe re-admits it as
  // kRebuilding and the repair manager refills it in place from node 1.
  Fabric fabric(CostModel::Default(), 2);
  DilosRuntime rt(fabric, RecoveryConfig(2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(0), NodeState::kDead);
  DriveUntilIdle(rt);  // No target exists; the queue drains empty.

  // Overwrite everything while node 0 is down: write-backs land only on
  // node 1, so node 0's copies are now genuinely stale.
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xF00D);
  }

  fabric.RestoreNode(0);
  rt.DriveRecovery(2'000'000);  // A probe answers; the node is re-admitted.
  EXPECT_GE(rt.stats().nodes_readmitted, 1u);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());
  EXPECT_EQ(rt.router().state(0), NodeState::kLive);
  EXPECT_GT(rt.stats().repair_granules, 0u);

  // The staleness check: crash the node that carried the updates. Every
  // value must now verify from the refilled node 0 alone.
  fabric.CrashNode(1);
  rt.DriveRecovery(2'000'000);
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xF00D)) {
      ++errors;
    }
  }
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(Readmission, OrphanCopiesMergeWhenFreshAndDropWhenStale) {
  // Readmission copy-merge: a node comes back after its granules were
  // remapped *off* it. Its orphaned copies are either current (no write-back
  // since it died) — merged back into the replica set without moving a page —
  // or generation-stale — dropped, never laundered into a readable replica.
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg = RecoveryConfig(2);
  cfg.telemetry.check_invariants = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  // Cycle the cache so every dirty page has been written back: node 1's
  // copies are complete when it dies.
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  // Record a granule node 1 holds whose pages we will dirty while it is down
  // (its orphan must come back stale) — the others stay untouched (fresh).
  std::vector<int> replicas;
  uint64_t stale_granule = UINT64_MAX;
  int on_node1 = 0;
  for (uint64_t granule : rt.router().written_granules()) {
    rt.router().ReplicaNodes(granule << kShardGranuleShift, &replicas);
    if (std::find(replicas.begin(), replicas.end(), 1) != replicas.end()) {
      ++on_node1;
      if (stale_granule == UINT64_MAX) {
        stale_granule = granule;
      }
    }
  }
  ASSERT_GE(on_node1, 2) << "need a granule to dirty and one to leave fresh";

  fabric.CrashNode(1);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(1), NodeState::kDead);
  DriveUntilIdle(rt, 200);  // Every granule remapped onto the two survivors.
  ASSERT_TRUE(rt.RecoveryIdle());

  // Dirty the chosen granule and force the write-backs out: its generations
  // advance on the survivors, so node 1's orphan copy is now provably stale.
  uint64_t stale_base = stale_granule << kShardGranuleShift;
  for (uint32_t p = 0; p < kPagesPerGranule; ++p) {
    rt.Write<uint64_t>(stale_base + p * kPageSize,
                       ((stale_base - region) / kPageSize + p) ^ 0xD15C0);
  }
  ASSERT_EQ(VerifySweep(rt, region, pages), 0u);

  // Kill one survivor so the readmitted node's fresh orphans actually matter:
  // redundancy is short a replica exactly where the merge can restore it.
  fabric.CrashNode(2);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(2), NodeState::kDead);
  DriveUntilIdle(rt, 200);

  fabric.RestoreNode(1);
  rt.DriveRecovery(2'000'000);  // Probe answers; readmission reconciles.
  EXPECT_GT(rt.stats().readmit_copies_merged, 0u)
      << "untouched orphans are current and must merge back";
  EXPECT_GT(rt.stats().readmit_orphans_dropped, 0u)
      << "the dirtied granule's orphan must be dropped, not trusted";
  DriveUntilIdle(rt, 200);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  // The merged copies must be real: bring node 2 back, let refills settle,
  // then crash node 0 and read everything through the merged/refilled nodes.
  fabric.RestoreNode(2);
  rt.DriveRecovery(2'000'000);
  DriveUntilIdle(rt, 200);
  ASSERT_TRUE(rt.RecoveryIdle());
  fabric.CrashNode(0);
  rt.DriveRecovery(2'000'000);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(Readmission, FirstWriteDuringRefillMakesGranuleReadable) {
  // A granule written for the very first time while a replica is
  // mid-readmission: the write itself is the granule's only content, so the
  // rebuilding replica is immediately readable for it (WriteQps records a
  // committed remap) instead of waiting for the node-wide refill.
  Fabric fabric(CostModel::Default(), 2);
  ShardRouter router(fabric, 1, 2, false);
  router.MarkRebuilding(0);
  uint64_t va = kFarBase;
  while (router.NodeOf(va) != 0) {
    va += kShardGranuleBytes;
  }
  ASSERT_FALSE(router.Readable(0, ShardRouter::GranuleOf(va)));
  std::vector<QueuePair*> qps;
  std::vector<int> nodes;
  router.WriteQps(0, CommChannel::kManager, va, &qps, &nodes);
  ASSERT_EQ(nodes.size(), 2u) << "rebuilding replica receives the write";
  EXPECT_TRUE(router.Readable(0, ShardRouter::GranuleOf(va)));
}

TEST(DegradedMode, RebuildingNodeReadableOnlyForCommittedGranules) {
  Fabric fabric(CostModel::Default(), 3);
  ShardRouter router(fabric, 1, 2, false, /*spare_nodes=*/1);
  router.MarkRebuilding(2);
  uint64_t committed = 7, pending = 9;
  router.BeginRebuild(committed, {2, 1}, 2);
  router.CommitRebuild(committed);
  router.BeginRebuild(pending, {2, 1}, 2);
  EXPECT_TRUE(router.Readable(2, committed));
  EXPECT_FALSE(router.Readable(2, pending));
  EXPECT_FALSE(router.Readable(2, 12345));  // Never rebuilt here at all.
}

}  // namespace
}  // namespace dilos
