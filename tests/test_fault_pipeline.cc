// Async fault pipeline (src/sim/fiber.h + the pipelined demand-fault path in
// src/dilos/runtime.cc, DESIGN.md §12):
//
//  - FaultPipeline scheduler core: deterministic park/harvest ordering,
//    depth-limit backpressure, completion coalescing, external retire.
//  - Runtime integration: depth 1 reproduces the blocking fault path
//    bit-exactly (counts and clock) for every prefetcher variant; deeper
//    pipelines overlap faults, batch installs, resume direct touches of
//    parked pages, quiesce cleanly, and survive region teardown.
//  - Telemetry: fault-park / fault-resume spans nest under the demand-fault
//    span; the counter-invariant checker catches impossible pipeline counts.
//  - Chaos: the 32-seed mixed-fault soak of test_chaos.cc rerun with the
//    pipeline at depth 8 — no wrong read, no lost write, no stuck fault.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "src/apps/seqrw.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"
#include "src/memnode/fault_injector.h"
#include "src/sim/fiber.h"
#include "src/telemetry/invariants.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

// -- Scheduler core -----------------------------------------------------------

TEST(FaultPipelineCore, DepthLimitRefusesAdmissionWhenFull) {
  FaultPipeline pipe(3);
  EXPECT_EQ(pipe.depth(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(pipe.Full());
    EXPECT_TRUE(pipe.Admit(0x1000 * (i + 1), static_cast<uint32_t>(i), i, 100 + i, false));
  }
  EXPECT_TRUE(pipe.Full());
  EXPECT_FALSE(pipe.Admit(0x9000, 9, 9, 999, false)) << "admission above depth must refuse";
  EXPECT_EQ(pipe.size(), 3u);
}

TEST(FaultPipelineCore, DepthZeroClampsToOne) {
  FaultPipeline pipe(0);
  EXPECT_EQ(pipe.depth(), 1u);
  EXPECT_TRUE(pipe.Admit(0x1000, 0, 0, 10, false));
  EXPECT_TRUE(pipe.Full());
}

TEST(FaultPipelineCore, OldestDoneNsTracksTheEarliestCompletion) {
  FaultPipeline pipe(4);
  EXPECT_EQ(pipe.OldestDoneNs(), UINT64_MAX) << "empty pipeline has no stall target";
  pipe.Admit(0x1000, 0, 0, 500, false);
  pipe.Admit(0x2000, 1, 1, 200, false);
  pipe.Admit(0x3000, 2, 2, 900, false);
  EXPECT_EQ(pipe.OldestDoneNs(), 200u);
}

TEST(FaultPipelineCore, HarvestReturnsRipeFibersInCompletionOrder) {
  FaultPipeline pipe(8);
  // Admission order != completion order: the link can reorder completions.
  pipe.Admit(0xA000, 0, 0, 300, false);
  pipe.Admit(0xB000, 1, 1, 100, true);
  pipe.Admit(0xC000, 2, 2, 200, false);
  pipe.Admit(0xD000, 3, 3, 900, false);  // Not ripe.
  std::vector<FaultFiber> out;
  EXPECT_EQ(pipe.HarvestUpTo(300, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].page_va, 0xB000u);
  EXPECT_EQ(out[1].page_va, 0xC000u);
  EXPECT_EQ(out[2].page_va, 0xA000u);
  EXPECT_TRUE(out[1].write == false && out[0].write == true) << "payload must ride along";
  for (const FaultFiber& f : out) {
    EXPECT_EQ(f.state, FiberState::kReady);
  }
  EXPECT_EQ(pipe.size(), 1u) << "the unripe fiber stays parked";
  EXPECT_EQ(pipe.parked()[0].page_va, 0xD000u);
}

TEST(FaultPipelineCore, HarvestBreaksDoneTiesByAdmissionOrder) {
  FaultPipeline pipe(8);
  pipe.Admit(0x3000, 0, 0, 100, false);
  pipe.Admit(0x1000, 1, 1, 100, false);
  pipe.Admit(0x2000, 2, 2, 100, false);
  std::vector<FaultFiber> out;
  pipe.HarvestUpTo(100, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].page_va, 0x3000u);
  EXPECT_EQ(out[1].page_va, 0x1000u);
  EXPECT_EQ(out[2].page_va, 0x2000u);
}

TEST(FaultPipelineCore, HarvestCoalescesAcrossCallsWithoutLosingFibers) {
  FaultPipeline pipe(4);
  pipe.Admit(0x1000, 0, 0, 100, false);
  pipe.Admit(0x2000, 1, 1, 400, false);
  std::vector<FaultFiber> out;
  EXPECT_EQ(pipe.HarvestUpTo(50, &out), 0u) << "nothing ripe yet";
  EXPECT_EQ(pipe.HarvestUpTo(100, &out), 1u);
  EXPECT_EQ(pipe.HarvestUpTo(100, &out), 0u) << "a fiber harvests exactly once";
  EXPECT_EQ(pipe.HarvestUpTo(400, &out), 1u);
  EXPECT_TRUE(pipe.empty());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].page_va, 0x1000u);
  EXPECT_EQ(out[1].page_va, 0x2000u);
}

TEST(FaultPipelineCore, RetireRemovesByPageAndFreesASlot) {
  FaultPipeline pipe(2);
  pipe.Admit(0x1000, 0, 0, 100, false);
  pipe.Admit(0x2000, 1, 1, 200, false);
  ASSERT_TRUE(pipe.Full());
  EXPECT_FALSE(pipe.Retire(0x5000)) << "unknown page retires nothing";
  EXPECT_TRUE(pipe.Retire(0x1000));
  EXPECT_FALSE(pipe.Full());
  EXPECT_EQ(pipe.OldestDoneNs(), 200u);
  EXPECT_FALSE(pipe.Retire(0x1000)) << "double retire must not find a ghost";
}

// -- Runtime integration ------------------------------------------------------

DilosConfig PipeConfig(uint32_t depth, uint64_t local_bytes = 64 * kPageSize) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  if (depth > 0) {
    cfg.fault_pipeline.enabled = true;
    cfg.fault_pipeline.depth = depth;
  }
  return cfg;
}

struct SweepOutcome {
  uint64_t major = 0, minor = 0, zero = 0, elapsed = 0, end_ns = 0;
};

// Populate + read sweep of `pages` through a 64-frame pool, returning the
// fault counts and timing of the measured sweep.
template <typename MakePf>
SweepOutcome RunSweep(uint32_t depth, MakePf make_prefetcher, uint64_t pages = 256) {
  Fabric fabric;
  DilosRuntime rt(fabric, PipeConfig(depth), make_prefetcher());
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xF1BE2);
  }
  rt.Quiesce();
  RuntimeStats& st = rt.stats();
  SweepOutcome o;
  uint64_t major0 = st.major_faults, minor0 = st.minor_faults, zero0 = st.zero_fill_faults;
  uint64_t t0 = rt.clock(0).now();
  for (uint64_t p = 0; p < pages; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xF1BE2) << "page " << p;
  }
  rt.Quiesce();
  o.major = st.major_faults - major0;
  o.minor = st.minor_faults - minor0;
  o.zero = st.zero_fill_faults - zero0;
  o.elapsed = rt.clock(0).now() - t0;
  o.end_ns = rt.MaxTimeNs();
  EXPECT_EQ(st.fault_inflight, 0u) << "quiesce must drain every parked fault";
  return o;
}

TEST(FaultPipelineRuntime, DepthOneIsBitIdenticalToBlockingForEveryVariant) {
  // The strongest form of the depth-1 gate: not just equal fault counts but
  // an identical simulated timeline, for all three prefetcher variants —
  // fiber-switch costs are only charged at depth > 1, so any divergence
  // here is a path that forgot the rule.
  auto variants = {0, 1, 2};
  for (int v : variants) {
    auto make = [v]() -> std::unique_ptr<Prefetcher> {
      if (v == 0) return std::make_unique<NullPrefetcher>();
      if (v == 1) return std::make_unique<ReadaheadPrefetcher>();
      return std::make_unique<TrendPrefetcher>();
    };
    SweepOutcome blocking = RunSweep(0, make);
    SweepOutcome d1 = RunSweep(1, make);
    EXPECT_EQ(blocking.major, d1.major) << "variant " << v;
    EXPECT_EQ(blocking.minor, d1.minor) << "variant " << v;
    EXPECT_EQ(blocking.zero, d1.zero) << "variant " << v;
    EXPECT_EQ(blocking.elapsed, d1.elapsed) << "variant " << v;
    EXPECT_EQ(blocking.end_ns, d1.end_ns) << "variant " << v;
  }
}

TEST(FaultPipelineRuntime, DeterministicAcrossIdenticalRuns) {
  auto make = [] { return std::make_unique<ReadaheadPrefetcher>(); };
  SweepOutcome a = RunSweep(8, make);
  SweepOutcome b = RunSweep(8, make);
  EXPECT_EQ(a.major, b.major);
  EXPECT_EQ(a.minor, b.minor);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

TEST(FaultPipelineRuntime, OverlapBeatsBlockingAndAccountsEveryFiber) {
  Fabric fabric;
  DilosRuntime rt(fabric, PipeConfig(8), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  rt.Quiesce();
  RuntimeStats& st = rt.stats();
  uint64_t t0 = rt.clock(0).now();
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p);
  }
  rt.Quiesce();
  uint64_t piped_elapsed = rt.clock(0).now() - t0;

  EXPECT_GT(st.fault_parks, 0u);
  EXPECT_EQ(st.fault_inflight, 0u);
  EXPECT_EQ(st.fault_resumes, st.fault_parks) << "no fiber may leak or double-resume";
  EXPECT_LE(st.fault_batched_installs, st.fault_resumes);
  EXPECT_GT(st.fault_batched_installs, 0u);
  EXPECT_LE(st.fault_inflight_peak, 8u) << "depth is a hard bound";
  EXPECT_GT(st.fault_inflight_peak, 1u) << "depth 8 should actually overlap";
  for (int c = 0; c < rt.num_cores(); ++c) {
    EXPECT_EQ(rt.pipeline(c)->size(), 0u);
  }

  auto blocking = RunSweep(0, [] { return std::make_unique<NullPrefetcher>(); }, pages);
  EXPECT_LT(piped_elapsed, blocking.elapsed) << "overlap must shorten the demand sweep";
}

TEST(FaultPipelineRuntime, DepthLimitBackpressureStallsAndNeverExceedsDepth) {
  auto run = [](uint32_t depth) {
    Fabric fabric;
    DilosRuntime rt(fabric, PipeConfig(depth), std::make_unique<NullPrefetcher>());
    const uint64_t pages = 256;
    uint64_t region = rt.AllocRegion(pages * kPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Write<uint64_t>(region + p * kPageSize, p);
    }
    rt.Quiesce();
    for (uint64_t p = 0; p < pages; ++p) {
      EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p);
    }
    rt.Quiesce();
    EXPECT_LE(rt.stats().fault_inflight_peak, depth);
    return rt.stats().fault_pipeline_stalls;
  };
  uint64_t stalls_d2 = run(2);
  uint64_t stalls_d16 = run(16);
  EXPECT_GT(stalls_d2, 0u) << "a shallow pipeline must hit its depth limit";
  EXPECT_LT(stalls_d16, stalls_d2) << "deepening must relieve the backpressure";
}

TEST(FaultPipelineRuntime, TouchingAParkedPageResumesItWithoutAMinorFault) {
  Fabric fabric;
  DilosRuntime rt(fabric, PipeConfig(4), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0x77);
  }
  rt.Quiesce();
  RuntimeStats& st = rt.stats();

  // First touch of an evicted page parks its fault (the handler returns with
  // the PTE still kFetching at depth > 1)...
  ASSERT_EQ(rt.Read<uint64_t>(region), 0u ^ 0x77);
  ASSERT_EQ(st.fault_inflight, 1u);
  ASSERT_EQ(PteTagOf(rt.page_table().Get(region)), PteTag::kFetching);
  uint64_t minor0 = st.minor_faults;
  uint64_t resumes0 = st.fault_resumes;

  // ...so an immediate second touch finds the parked fiber and resumes it
  // directly. In blocking mode this touch would have been a plain local hit;
  // counting it a minor fault would skew cross-mode comparisons.
  EXPECT_EQ(rt.Read<uint64_t>(region), 0u ^ 0x77);
  EXPECT_EQ(st.minor_faults, minor0) << "a parked-page touch is a resume, not a minor fault";
  EXPECT_EQ(st.fault_resumes, resumes0 + 1);
  EXPECT_EQ(st.fault_inflight, 0u);
  EXPECT_EQ(PteTagOf(rt.page_table().Get(region)), PteTag::kLocal);
}

TEST(FaultPipelineRuntime, IdleCoreHarvestsAWholeRipeBatchInOnePoll) {
  Fabric fabric;
  DilosRuntime rt(fabric, PipeConfig(8), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  rt.Quiesce();
  RuntimeStats& st = rt.stats();

  // Park a few faults back to back, then idle the core past all of their
  // completions: the next fault's coalesced poll must install the whole ripe
  // backlog as one batch.
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p);
  }
  ASSERT_GT(st.fault_inflight, 1u) << "the back-to-back faults should have overlapped";
  uint64_t resumes0 = st.fault_resumes;
  uint64_t batches0 = st.fault_batched_installs;
  rt.clock(0).Advance(1 * kMs);  // Every parked completion is now in the past.
  EXPECT_EQ(rt.Read<uint64_t>(region + 100 * kPageSize), 100u);
  EXPECT_GE(st.fault_resumes - resumes0, 3u) << "the ripe backlog must drain";
  EXPECT_EQ(st.fault_batched_installs - batches0, 1u)
      << "one poll, one batched install, one TLB flush";
}

TEST(FaultPipelineRuntime, FreeRegionTearsDownParkedFaultsCleanly) {
  Fabric fabric;
  DilosRuntime rt(fabric, PipeConfig(8), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  rt.Quiesce();
  for (uint64_t p = 0; p < 4; ++p) {
    rt.Read<uint64_t>(region + p * kPageSize);
  }
  ASSERT_GT(rt.stats().fault_inflight, 0u);
  uint64_t free0 = rt.frame_pool().free_count();
  rt.FreeRegion(region, pages * kPageSize);
  EXPECT_EQ(rt.stats().fault_inflight, 0u) << "teardown must release the parked fibers";
  EXPECT_GT(rt.frame_pool().free_count(), free0) << "parked frames must return to the pool";
  rt.Quiesce();  // Must be a no-op, not a hang or a double-install.
  for (int c = 0; c < rt.num_cores(); ++c) {
    EXPECT_EQ(rt.pipeline(c)->size(), 0u);
  }
  // The region is reusable: first touches are zero-fill, not stale frames.
  uint64_t region2 = rt.AllocRegion(4 * kPageSize);
  EXPECT_EQ(rt.Read<uint64_t>(region2), 0u);
}

// -- Telemetry ----------------------------------------------------------------

TEST(FaultPipelineTelemetry, ParkAndResumeSpansNestUnderTheFaultSpan) {
  Fabric fabric;
  DilosConfig cfg = PipeConfig(8);
  cfg.telemetry.span_capacity = 8192;
  cfg.telemetry.check_invariants = true;  // The dtor audits the counters too.
  {
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    const uint64_t pages = 128;
    uint64_t region = rt.AllocRegion(pages * kPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Write<uint64_t>(region + p * kPageSize, p);
    }
    rt.Quiesce();
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
    rt.Quiesce();

    std::vector<SpanRecord> spans = rt.tracer().SpanSnapshot();
    uint64_t parks = 0, resumes = 0, nested_parks = 0;
    for (const SpanRecord& s : spans) {
      if (s.kind == SpanKind::kFaultPark) {
        ++parks;
        // The park span opens inside its own demand fault's root span.
        for (const SpanRecord& root : spans) {
          if (root.id == s.parent && root.kind == SpanKind::kFault) {
            ++nested_parks;
            break;
          }
        }
      } else if (s.kind == SpanKind::kFaultResume) {
        ++resumes;
      }
    }
    EXPECT_GT(parks, 0u);
    EXPECT_GT(resumes, 0u);
    EXPECT_EQ(nested_parks, parks) << "every park span must nest under a fault span";
    EXPECT_EQ(rt.tracer().open_spans(), 0u) << "no span may leak open across quiesce";
  }
}

TEST(FaultPipelineTelemetry, InvariantCheckerCatchesImpossiblePipelineCounts) {
  RuntimeStats s{};
  EXPECT_TRUE(CheckStatsInvariants(s, false).empty());
  s.major_faults = 10;
  s.fault_parks = 8;
  s.fault_resumes = 6;
  s.fault_inflight = 2;
  s.fault_inflight_peak = 4;
  s.fault_batched_installs = 5;
  EXPECT_TRUE(CheckStatsInvariants(s, false).empty()) << "consistent counts must pass";

  RuntimeStats ghost = s;
  ghost.fault_resumes = 9;  // 9 resumes + 2 in flight > 8 parks.
  EXPECT_FALSE(CheckStatsInvariants(ghost, false).empty());
  RuntimeStats orphan = s;
  orphan.fault_parks = 11;  // Parks without major faults.
  EXPECT_FALSE(CheckStatsInvariants(orphan, false).empty());
  RuntimeStats phantom = s;
  phantom.fault_batched_installs = 7;  // More batches than resumes.
  EXPECT_FALSE(CheckStatsInvariants(phantom, false).empty());
}

// -- Chaos --------------------------------------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// The mixed-fault soak of test_chaos.cc (crash + gray + flaky + partition
// windows, continuous wire flips, scoped storage rot) with the fault
// pipeline at depth 8: every demand fault in the load loop overlaps with
// its neighbors, and the retry/EC/heal machinery runs inside parked-fiber
// timelines. Asserts the same bar as blocking mode — no wrong read, no lost
// acked write, no abandoned fetch — plus the pipeline's own: no stuck fault.
void PipelineChaosSoak(uint64_t seed, bool ec) {
  Fabric fabric(CostModel::Default(), ec ? 5 : 3);
  FaultPlan plan;
  plan.specs.push_back({1, FaultKind::kCrash, 1.0, 1.0, 2 * kMs, 11 * kMs});
  plan.specs.push_back({2, FaultKind::kDelay, 1.0, 8.0, 4 * kMs, 14 * kMs});
  plan.specs.push_back({2, FaultKind::kTransient, 0.02, 1.0, 14'500'000, 17 * kMs});
  plan.specs.push_back({0, FaultKind::kPartitionOut, 1.0, 1.0, 18 * kMs, 20'500'000});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.01, 1.0, 0, UINT64_MAX});
  plan.specs.push_back({-1, FaultKind::kStorageRot, 0.0005, 1.0,
                        ec ? 1 * kMs : 12 * kMs, ec ? UINT64_MAX : 14'500'000});
  fabric.set_fault_plan(plan);

  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.recovery.enabled = true;
  cfg.fault_seed = seed;
  cfg.pm.scrub_pages_per_tick = 64;
  cfg.fault_pipeline.enabled = true;
  cfg.fault_pipeline.depth = 8;
  if (ec) {
    cfg.ec.enabled = true;
    cfg.ec.k = 2;
    cfg.ec.m = 2;
  } else {
    cfg.replication = 2;
  }
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
  }

  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  uint64_t wrong_reads = 0;
  uint64_t ops = 0;
  while (rt.clock(0).now() < 22 * kMs && ops < 600'000) {
    uint64_t p = next() % pages;
    if (next() % 4 == 0) {
      rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
    } else if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++wrong_reads;
    }
    ++ops;
  }
  rt.Quiesce();
  for (int i = 0; i < 10; ++i) {
    rt.DriveRecovery(1'000'000);
  }
  for (int i = 0; i < 100 && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }

  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed << (ec ? " (ec)" : " (replication)");
  uint64_t sweep_errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++sweep_errors;
    }
  }
  rt.Quiesce();
  EXPECT_EQ(sweep_errors, 0u) << "fault_seed=" << seed << (ec ? " (ec)" : " (replication)");
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << seed;
  // No stuck fault: everything parked was eventually resumed or torn down.
  EXPECT_EQ(rt.stats().fault_inflight, 0u) << "fault_seed=" << seed;
  EXPECT_EQ(rt.stats().fault_resumes, rt.stats().fault_parks) << "fault_seed=" << seed;
  for (int c = 0; c < rt.num_cores(); ++c) {
    EXPECT_EQ(rt.pipeline(c)->size(), 0u) << "fault_seed=" << seed;
  }
  EXPECT_GT(rt.stats().fault_parks, 0u) << "the pipeline should actually have been used";
  EXPECT_GT(fabric.injector().injected_faults(), 0u) << "fault_seed=" << seed;
}

TEST(FaultPipelineChaos, PipelinedReplicationSurvives32SeedsOfMixedFaults) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    PipelineChaosSoak(s, /*ec=*/false);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

TEST(FaultPipelineChaos, PipelinedErasureCodingSurvives8Seeds) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 8; ++s) {
    PipelineChaosSoak(s, /*ec=*/true);
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
}

}  // namespace
}  // namespace dilos
