// Tests for erasure-coded redundancy (src/recovery/ec.*): GF(2^8) codec
// round-trips, stripe layout invariants, degraded reads under node loss,
// parity consistency across cleaner write-backs, and rebuild-from-parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/recovery/ec.h"

namespace dilos {
namespace {

DilosConfig EcConfig(int k, int m) {
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.recovery.enabled = true;
  cfg.ec.enabled = true;
  cfg.ec.k = k;
  cfg.ec.m = m;
  return cfg;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages, uint64_t salt = 0xD15C0) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ salt);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages,
                     uint64_t salt = 0xD15C0) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ salt)) {
      ++errors;
    }
  }
  return errors;
}

void DriveUntilIdle(DilosRuntime& rt, uint64_t max_ms = 50) {
  for (uint64_t i = 0; i < max_ms && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
}

// Encodes a (k, m) stripe of pseudo-random data blocks plus parity built with
// the delta primitive — the same call the cleaner's read-modify-write uses.
std::vector<std::vector<uint8_t>> MakeStripe(const ECCodec& codec, size_t n) {
  int k = codec.k();
  int m = codec.m();
  std::vector<std::vector<uint8_t>> blocks(static_cast<size_t>(k + m),
                                           std::vector<uint8_t>(n, 0));
  uint32_t x = 0x5EED;
  for (int j = 0; j < k; ++j) {
    for (size_t i = 0; i < n; ++i) {
      x = x * 1664525u + 1013904223u;
      blocks[static_cast<size_t>(j)][i] = static_cast<uint8_t>(x >> 16);
    }
  }
  for (int p = 0; p < m; ++p) {
    for (int j = 0; j < k; ++j) {
      ECCodec::XorMulInto(blocks[static_cast<size_t>(k + p)].data(),
                          blocks[static_cast<size_t>(j)].data(), codec.Coef(k + p, j), n);
    }
  }
  return blocks;
}

TEST(ECCodec, GfFieldArithmetic) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = ECCodec::GfInv(static_cast<uint8_t>(a));
    EXPECT_EQ(ECCodec::GfMul(static_cast<uint8_t>(a), inv), 1) << a;
  }
  EXPECT_EQ(ECCodec::GfPow(2, 0), 1);
  EXPECT_EQ(ECCodec::GfMul(0, 0xAB), 0);
  EXPECT_EQ(ECCodec::GfMul(3, 7), ECCodec::GfMul(7, 3));
}

TEST(ECCodec, ReconstructsAnySingleLostMember) {
  const int k = 4, m = 2;
  ECCodec codec(k, m);
  const size_t n = 128;
  auto blocks = MakeStripe(codec, n);
  for (int lost = 0; lost < k + m; ++lost) {
    std::vector<int> members;
    std::vector<const uint8_t*> ptrs;
    for (int j = 0; j < k + m && static_cast<int>(members.size()) < k; ++j) {
      if (j == lost) {
        continue;
      }
      members.push_back(j);
      ptrs.push_back(blocks[static_cast<size_t>(j)].data());
    }
    std::vector<uint8_t> out(n);
    ASSERT_TRUE(codec.Reconstruct(lost, members.data(), ptrs.data(), k, out.data(), n))
        << "lost member " << lost;
    EXPECT_EQ(std::memcmp(out.data(), blocks[static_cast<size_t>(lost)].data(), n), 0)
        << "lost member " << lost;
  }
}

TEST(ECCodec, ReconstructsDoubleLossFromKSurvivors) {
  const int k = 4, m = 2;
  ECCodec codec(k, m);
  const size_t n = 96;
  auto blocks = MakeStripe(codec, n);
  // Lose data member 1 and parity member 5: survivors {0, 2, 3, 4}.
  int members[] = {0, 2, 3, 4};
  const uint8_t* ptrs[] = {blocks[0].data(), blocks[2].data(), blocks[3].data(),
                           blocks[4].data()};
  for (int lost : {1, 5}) {
    std::vector<uint8_t> out(n);
    ASSERT_TRUE(codec.Reconstruct(lost, members, ptrs, k, out.data(), n));
    EXPECT_EQ(std::memcmp(out.data(), blocks[static_cast<size_t>(lost)].data(), n), 0);
  }
}

TEST(ECCodec, CauchyMatrixIsMdsForTripleParity) {
  // (4, 3): every choice of 3 lost members out of 7 must be recoverable from
  // the 4 survivors — the MDS property the Cauchy construction guarantees
  // for arbitrary (k, m), where the old Vandermonde-row generator went
  // singular beyond m = 2. All C(7,3) = 35 loss patterns, every lost member.
  const int k = 4, m = 3;
  ECCodec codec(k, m);
  const size_t n = 64;
  auto blocks = MakeStripe(codec, n);
  int patterns = 0;
  for (int a = 0; a < k + m; ++a) {
    for (int b = a + 1; b < k + m; ++b) {
      for (int c = b + 1; c < k + m; ++c) {
        ++patterns;
        std::vector<int> members;
        std::vector<const uint8_t*> ptrs;
        for (int j = 0; j < k + m && static_cast<int>(members.size()) < k; ++j) {
          if (j == a || j == b || j == c) {
            continue;
          }
          members.push_back(j);
          ptrs.push_back(blocks[static_cast<size_t>(j)].data());
        }
        ASSERT_EQ(static_cast<int>(members.size()), k);
        for (int lost : {a, b, c}) {
          std::vector<uint8_t> out(n);
          ASSERT_TRUE(codec.Reconstruct(lost, members.data(), ptrs.data(), k, out.data(), n))
              << "lost {" << a << "," << b << "," << c << "}, decoding " << lost;
          EXPECT_EQ(std::memcmp(out.data(), blocks[static_cast<size_t>(lost)].data(), n), 0)
              << "lost {" << a << "," << b << "," << c << "}, decoding " << lost;
        }
      }
    }
  }
  EXPECT_EQ(patterns, 35);
}

TEST(ECCodec, RefusesFewerThanKSurvivors) {
  const int k = 3, m = 1;
  ECCodec codec(k, m);
  const size_t n = 32;
  auto blocks = MakeStripe(codec, n);
  int members[] = {0, 2};
  const uint8_t* ptrs[] = {blocks[0].data(), blocks[2].data()};
  std::vector<uint8_t> out(n);
  EXPECT_FALSE(codec.Reconstruct(1, members, ptrs, 2, out.data(), n));
}

TEST(ECCodec, DeltaUpdateKeepsParityConsistent) {
  const int k = 3, m = 2;
  ECCodec codec(k, m);
  const size_t n = 64;
  auto blocks = MakeStripe(codec, n);
  // Overwrite data member 1 and fold delta = old ^ new into every parity —
  // exactly the cleaner's write-back path.
  std::vector<uint8_t> fresh(n);
  for (size_t i = 0; i < n; ++i) {
    fresh[i] = static_cast<uint8_t>(0xC3 ^ i);
  }
  std::vector<uint8_t> delta(n);
  for (size_t i = 0; i < n; ++i) {
    delta[i] = blocks[1][i] ^ fresh[i];
  }
  blocks[1] = fresh;
  for (int p = 0; p < m; ++p) {
    ECCodec::XorMulInto(blocks[static_cast<size_t>(k + p)].data(), delta.data(),
                        codec.Coef(k + p, 1), n);
  }
  // The updated member must decode from the untouched members plus parity.
  int members[] = {0, 2, 3};
  const uint8_t* ptrs[] = {blocks[0].data(), blocks[2].data(), blocks[3].data()};
  std::vector<uint8_t> out(n);
  ASSERT_TRUE(codec.Reconstruct(1, members, ptrs, k, out.data(), n));
  EXPECT_EQ(std::memcmp(out.data(), fresh.data(), n), 0);
}

TEST(EcLayout, StripeMembersLandOnDistinctNodesAndRoundTrip) {
  Fabric fabric(CostModel::Default(), 6);
  ECConfig ec;
  ec.enabled = true;
  ec.k = 4;
  ec.m = 2;
  ShardRouter router(fabric, 1, /*replication=*/3, false, 0, ec);
  EXPECT_EQ(router.replication(), 1) << "EC replaces replication";
  uint64_t g0 = kFarBase >> kShardGranuleShift;
  for (uint64_t g = g0; g < g0 + 64; ++g) {
    uint64_t s = router.EcStripeOf(g);
    std::vector<int> nodes;
    for (int j = 0; j < 6; ++j) {
      uint64_t member_granule = router.EcMemberGranule(s, j);
      EXPECT_EQ(router.EcStripeOf(member_granule), s);
      EXPECT_EQ(router.EcMemberOf(member_granule), j);
      nodes.push_back(router.EcNode(s, j));
      uint64_t member_va = member_granule << kShardGranuleShift;
      if (j >= 4) {
        EXPECT_GE(member_va, kEcParityBase) << "parity lives in the upper half";
      } else {
        EXPECT_LT(member_va, kEcParityBase);
      }
    }
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(std::unique(nodes.begin(), nodes.end()), nodes.end())
        << "stripe " << s << " co-locates two members";
  }
}

TEST(EcLayout, ClampsToFabricSize) {
  Fabric fabric(CostModel::Default(), 3);
  ECConfig ec;
  ec.enabled = true;
  ec.k = 4;
  ec.m = 2;
  ShardRouter router(fabric, 1, 1, false, 0, ec);
  EXPECT_EQ(router.ec().m, 2);
  EXPECT_EQ(router.ec().k, 1) << "k shrinks so k + m fits the 3 nodes";
}

TEST(EcRuntime, DegradedReadsSurviveSingleNodeCrash) {
  // The acceptance shape: (k=4, m=2) over 6 nodes, one node crashes under no
  // oracle, every read still verifies via reconstruction.
  Fabric fabric(CostModel::Default(), 6);
  DilosRuntime rt(fabric, EcConfig(4, 2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(1);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.router().state(1), NodeState::kDead);
  EXPECT_GT(rt.stats().ec_degraded_reads, 0u);
  EXPECT_GT(rt.stats().ec_reconstructed_pages, 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
  EXPECT_EQ(rt.stats().ec_decode_failures, 0u);
}

TEST(EcRuntime, SurvivesMConcurrentNodeLosses) {
  Fabric fabric(CostModel::Default(), 4);
  DilosRuntime rt(fabric, EcConfig(2, 2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  fabric.CrashNode(3);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(EcRuntime, MorePthanMLossesAreReportedNotSilent) {
  // (2, 1) tolerates one loss; crash two of three nodes and the unlucky
  // stripes must fail loudly (failed_fetches / ec_decode_failures), never
  // serve wrong data silently as a success.
  Fabric fabric(CostModel::Default(), 3);
  DilosRuntime rt(fabric, EcConfig(2, 1), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(0);
  fabric.CrashNode(1);
  VerifySweep(rt, region, pages);  // Some reads fail; that is the point.
  EXPECT_GT(rt.stats().failed_fetches, 0u);
  EXPECT_GT(rt.stats().ec_decode_failures, 0u);
}

TEST(EcRuntime, ParityStaysConsistentAcrossCleanerWriteBacks) {
  // Two full write generations: the second one exercises the cleaner's
  // read-modify-write path (old content exists remotely). A crash afterwards
  // must reconstruct the *second* generation everywhere.
  Fabric fabric(CostModel::Default(), 5);
  DilosRuntime rt(fabric, EcConfig(3, 2), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages, 0xD15C0);
  Populate(rt, region, pages, 0xBEEF);

  EXPECT_GT(rt.stats().ec_parity_updates, 0u);
  fabric.CrashNode(0);
  EXPECT_EQ(VerifySweep(rt, region, pages, 0xBEEF), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(EcRuntime, RepairRebuildsLostMemberFromParity) {
  // Six nodes but (2, 1) stripes use only three each: healthy off-stripe
  // nodes exist, so the repair manager can regenerate the dead node's
  // members from parity instead of leaving reads degraded forever.
  Fabric fabric(CostModel::Default(), 6);
  DilosRuntime rt(fabric, EcConfig(2, 1), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(2);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(2), NodeState::kDead);
  DriveUntilIdle(rt);
  ASSERT_TRUE(rt.RecoveryIdle());
  EXPECT_GT(rt.stats().repairs_issued, 0u);
  EXPECT_GT(rt.stats().repair_granules, 0u);

  // Once rebuilt, reads are healthy again: no new reconstruction happens.
  uint64_t degraded_before = rt.stats().ec_degraded_reads;
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_EQ(rt.stats().ec_degraded_reads, degraded_before);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(EcRuntime, SmallFabricRepairFallsBackToBoundedCoLocation) {
  // (4, 2) over exactly 6 nodes: every healthy node holds a member of every
  // stripe, so after one death a strictly-spread rebuild target is pigeonhole
  // impossible. The placement must fall back to bounded co-location (the
  // resulting member count on the chosen node stays within the parity budget
  // m) instead of leaving stripes degraded forever.
  Fabric fabric(CostModel::Default(), 6);
  DilosConfig cfg = EcConfig(4, 2);
  cfg.telemetry.check_invariants = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;  // One full (4, 2) stripe of data granules.
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  fabric.CrashNode(1);
  rt.DriveRecovery(2'000'000);
  ASSERT_EQ(rt.router().state(1), NodeState::kDead);
  DriveUntilIdle(rt, 300);
  ASSERT_TRUE(rt.RecoveryIdle());
  EXPECT_GT(rt.stats().ec_colocated_placements, 0u);
  EXPECT_EQ(rt.stats().repair_no_target, 0u) << "no stripe may stay degraded";
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  // The fallback's bound is the point: some survivor now holds two members,
  // and losing that very node is still only m = 2 erasures — every stripe
  // keeps k readable members and stays decodable.
  uint64_t stripe = rt.router().EcStripeOf(ShardRouter::GranuleOf(region));
  int colocated = -1;
  for (int n = 0; n < fabric.num_nodes(); ++n) {
    if (n != 1 && rt.router().EcMembersOnNode(stripe, n) >= 2) {
      colocated = n;
    }
  }
  ASSERT_GE(colocated, 0) << "the fallback should have doubled up somewhere";
  EXPECT_LE(rt.router().EcMembersOnNode(stripe, colocated), rt.router().ec().m);
  fabric.CrashNode(colocated);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u)
      << "losing the co-located node must stay within the parity budget";
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

}  // namespace
}  // namespace dilos
