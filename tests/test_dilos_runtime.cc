// Integration tests for the DiLOS runtime: fault taxonomy, data integrity
// across eviction, prefetch mechanics, hidden reclamation, and the TCP
// emulation knob.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"

namespace dilos {
namespace {

std::unique_ptr<DilosRuntime> MakeRuntime(Fabric& fabric, uint64_t local_bytes,
                                          std::unique_ptr<Prefetcher> pf = nullptr) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  if (!pf) {
    pf = std::make_unique<NullPrefetcher>();
  }
  return std::make_unique<DilosRuntime>(fabric, cfg, std::move(pf));
}

TEST(DilosRuntime, FirstTouchIsZeroFill) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 1 << 20);
  uint64_t region = rt->AllocRegion(64 * 4096);
  EXPECT_EQ(rt->Read<uint64_t>(region), 0u);
  EXPECT_EQ(rt->stats().zero_fill_faults, 1u);
  EXPECT_EQ(rt->stats().major_faults, 0u);
  EXPECT_EQ(rt->stats().bytes_fetched, 0u);  // No network for anonymous pages.
}

TEST(DilosRuntime, ReadAfterWriteSamePage) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 1 << 20);
  uint64_t a = rt->AllocRegion(4096);
  rt->Write<uint32_t>(a + 100, 0xDEADBEEF);
  EXPECT_EQ(rt->Read<uint32_t>(a + 100), 0xDEADBEEFu);
  EXPECT_EQ(rt->stats().total_faults(), 1u);  // One zero-fill; then local hits.
}

TEST(DilosRuntime, DataSurvivesEvictionRoundTrip) {
  Fabric fabric;
  // 32 frames of local memory; a 256-page working set forces eviction.
  auto rt = MakeRuntime(fabric, 32 * 4096);
  const uint64_t pages = 256;
  uint64_t region = rt->AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt->Write<uint64_t>(region + p * 4096 + 8, p * 31 + 7);
  }
  EXPECT_GT(rt->stats().evictions, 0u);
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt->Read<uint64_t>(region + p * 4096 + 8), p * 31 + 7) << p;
  }
}

TEST(DilosRuntime, RefaultIsMajorFault) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 16 * 4096);
  uint64_t region = rt->AllocRegion(128 * 4096);
  for (uint64_t p = 0; p < 128; ++p) {
    rt->Write<uint8_t>(region + p * 4096, static_cast<uint8_t>(p));
  }
  uint64_t majors_before = rt->stats().major_faults;
  // Page 0 was certainly evicted by now.
  EXPECT_EQ(rt->Read<uint8_t>(region), 0u);
  EXPECT_GT(rt->stats().major_faults, majors_before);
  EXPECT_GT(rt->stats().bytes_fetched, 0u);
}

TEST(DilosRuntime, ReclamationIsHiddenFromFaultPath) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 64 * 4096);
  uint64_t region = rt->AllocRegion(1024 * 4096);
  for (uint64_t p = 0; p < 1024; ++p) {
    rt->Write<uint8_t>(region + p * 4096, 1);
  }
  for (uint64_t p = 0; p < 1024; ++p) {
    rt->Read<uint8_t>(region + p * 4096);
  }
  // Eager background eviction means the fault handler never direct-reclaims
  // and the breakdown has no reclaim component (paper Fig. 6).
  EXPECT_EQ(rt->page_manager().direct_reclaims(), 0u);
  EXPECT_EQ(rt->stats().fault_breakdown.total_ns(LatComp::kReclaim), 0u);
  EXPECT_GT(rt->stats().evictions, 0u);
}

TEST(DilosRuntime, MajorFaultLatencyMatchesFig6Shape) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 32 * 4096);
  uint64_t region = rt->AllocRegion(512 * 4096);
  for (uint64_t p = 0; p < 512; ++p) {
    rt->Write<uint8_t>(region + p * 4096, 1);
  }
  for (uint64_t p = 0; p < 512; ++p) {
    rt->Read<uint8_t>(region + p * 4096);
  }
  const LatencyBreakdown& bd = rt->stats().fault_breakdown;
  ASSERT_GT(bd.events(), 0u);
  double total_us = bd.TotalMeanNs() / 1000.0;
  // DiLOS page fault handling is ~3.2 us: exception + fetch + map, nothing
  // else of consequence.
  EXPECT_GT(total_us, 2.5);
  EXPECT_LT(total_us, 4.2);
  // Fetch dominates.
  EXPECT_GT(bd.MeanNs(LatComp::kFetch) / bd.TotalMeanNs(), 0.5);
}

TEST(DilosRuntime, SequentialReadNoPrefetchAllMajor) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 32 * 4096);
  const uint64_t pages = 256;
  uint64_t region = rt->AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt->Write<uint8_t>(region + p * 4096, 1);
  }
  // Force everything out, then re-read sequentially.
  uint64_t scratch = rt->AllocRegion(64 * 4096);
  for (uint64_t p = 0; p < 64; ++p) {
    rt->Write<uint8_t>(scratch + p * 4096, 1);
  }
  rt->stats().major_faults = 0;
  rt->stats().minor_faults = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    rt->Read<uint8_t>(region + p * 4096);
  }
  // Without a prefetcher every fetched page is a major fault (Table 3 row 2).
  EXPECT_GE(rt->stats().major_faults, pages - 64);
  EXPECT_EQ(rt->stats().minor_faults, 0u);
}

TEST(DilosRuntime, ReadaheadConvertsMajorsToMinorsAndHits) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * 4096, 1);
  }
  uint64_t scratch = rt.AllocRegion(128 * 4096);
  for (uint64_t p = 0; p < 128; ++p) {
    rt.Write<uint8_t>(scratch + p * 4096, 1);
  }
  rt.stats().major_faults = 0;
  rt.stats().minor_faults = 0;
  rt.stats().prefetch_mapped_early = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * 4096);
  }
  // Majors collapse to roughly one per readahead window (Table 3 row 3:
  // 655k majors for 5.2M pages = 1/8).
  EXPECT_LT(rt.stats().major_faults, pages / 4);
  EXPECT_GE(rt.stats().major_faults, pages / 10);
  // The rest are minor (in-flight) faults or silently mapped-ahead pages.
  EXPECT_GT(rt.stats().minor_faults + rt.stats().prefetch_mapped_early, pages / 2);
}

TEST(DilosRuntime, PrefetcherSkipsResidentAndEmptyPages) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  uint64_t region = rt.AllocRegion(64 * 4096);
  // All pages are kEmpty: sequential touch must not issue any prefetch
  // (nothing is on the memory node yet).
  for (uint64_t p = 0; p < 64; ++p) {
    rt.Write<uint8_t>(region + p * 4096, 1);
  }
  EXPECT_EQ(rt.stats().prefetch_issued, 0u);
  EXPECT_EQ(rt.stats().bytes_fetched, 0u);
}

TEST(DilosRuntime, TcpEmulationSlowsFaults) {
  uint64_t plain_ns = 0;
  uint64_t tcp_ns = 0;
  for (bool tcp : {false, true}) {
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = 16 * 4096;
    cfg.tcp_emulation = tcp;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    uint64_t region = rt.AllocRegion(128 * 4096);
    for (uint64_t p = 0; p < 128; ++p) {
      rt.Write<uint8_t>(region + p * 4096, 1);
    }
    for (uint64_t p = 0; p < 128; ++p) {
      rt.Read<uint8_t>(region + p * 4096);
    }
    (tcp ? tcp_ns : plain_ns) = rt.clock().now();
  }
  EXPECT_GT(tcp_ns, plain_ns + 100 * CostModel::Default().tcp_delay_ns / 2);
}

TEST(DilosRuntime, MultiCoreClocksAreIndependent) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  cfg.num_cores = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(16 * 4096);
  rt.Write<uint8_t>(region, 1, /*core=*/0);
  EXPECT_GT(rt.clock(0).now(), 0u);
  EXPECT_EQ(rt.clock(1).now(), 0u);
  rt.Write<uint8_t>(region + 4096, 1, /*core=*/1);
  EXPECT_GT(rt.clock(1).now(), 0u);
  EXPECT_EQ(rt.MaxTimeNs(), std::max(rt.clock(0).now(), rt.clock(1).now()));
}

TEST(DilosRuntime, PageCrossingAccessWorks) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 1 << 20);
  uint64_t region = rt->AllocRegion(2 * 4096);
  uint64_t straddle = region + 4096 - 4;
  rt->Write<uint64_t>(straddle, 0x1122334455667788ULL);
  EXPECT_EQ(rt->Read<uint64_t>(straddle), 0x1122334455667788ULL);
}

TEST(DilosRuntime, RegionsDoNotOverlap) {
  Fabric fabric;
  auto rt = MakeRuntime(fabric, 1 << 20);
  uint64_t a = rt->AllocRegion(10 * 4096);
  uint64_t b = rt->AllocRegion(10 * 4096);
  EXPECT_GE(b, a + 10 * 4096);
  rt->Write<uint64_t>(a, 1);
  rt->Write<uint64_t>(b, 2);
  EXPECT_EQ(rt->Read<uint64_t>(a), 1u);
  EXPECT_EQ(rt->Read<uint64_t>(b), 2u);
}

TEST(TrendPrefetcher, DetectsForwardStride) {
  TrendPrefetcher pf;
  std::vector<uint64_t> out;
  uint64_t base = 1ULL << 40;
  // Feed a stride-2-page fault pattern.
  for (int i = 0; i < 6; ++i) {
    out.clear();
    pf.OnFault({base + static_cast<uint64_t>(i) * 2 * 4096, false, true, 1.0}, &out);
  }
  ASSERT_FALSE(out.empty());
  // Predictions continue the stride.
  EXPECT_EQ(out[0], base + 5 * 2 * 4096 + 2 * 4096);
}

TEST(TrendPrefetcher, DetectsBackwardStride) {
  TrendPrefetcher pf;
  std::vector<uint64_t> out;
  uint64_t base = (1ULL << 40) + 100 * 4096;
  for (int i = 0; i < 6; ++i) {
    out.clear();
    pf.OnFault({base - static_cast<uint64_t>(i) * 4096, false, true, 1.0}, &out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], base - 5 * 4096 - 4096);
}

TEST(TrendPrefetcher, NoMajorityMeansMinimalWindow) {
  TrendPrefetcher pf;
  std::vector<uint64_t> out;
  uint64_t base = 1ULL << 40;
  // Random-ish deltas: no majority.
  const uint64_t offs[] = {0, 7, 3, 21, 9, 40, 2, 33};
  for (uint64_t o : offs) {
    out.clear();
    pf.OnFault({base + o * 4096, false, true, 0.1}, &out);
  }
  EXPECT_LE(out.size(), 2u);
}

TEST(ReadaheadPrefetcher, EmitsForwardWindow) {
  ReadaheadPrefetcher pf;
  std::vector<uint64_t> out;
  uint64_t base = 1ULL << 40;
  pf.OnFault({base, false, true, 1.0}, &out);
  size_t w0 = out.size();
  EXPECT_GE(w0, 1u);
  out.clear();
  pf.OnFault({base + 4096 * (w0 + 1), false, true, 1.0}, &out);
  EXPECT_GE(out.size(), w0);  // Window grows on (near-)sequential faults.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i], out[i - 1] + 4096);
  }
}

}  // namespace
}  // namespace dilos
