// Tests for the unified page table: PTE tag encoding, 4-level walk, frame
// pool, and the PTE hit tracker.
#include <gtest/gtest.h>

#include "src/pt/frame_pool.h"
#include "src/pt/hit_tracker.h"
#include "src/pt/page_table.h"
#include "src/pt/pte.h"

namespace dilos {
namespace {

TEST(Pte, TagEncodingRoundTrips) {
  EXPECT_EQ(PteTagOf(0), PteTag::kEmpty);
  EXPECT_EQ(PteTagOf(MakeLocalPte(42, true)), PteTag::kLocal);
  EXPECT_EQ(PteTagOf(MakeRemotePte(42)), PteTag::kRemote);
  EXPECT_EQ(PteTagOf(MakeFetchingPte(42)), PteTag::kFetching);
  EXPECT_EQ(PteTagOf(MakeActionPte(42)), PteTag::kAction);
  EXPECT_EQ(PteTagOf(MakeTierPte(42)), PteTag::kTier);
}

TEST(Pte, PayloadPreserved) {
  EXPECT_EQ(PtePayload(MakeLocalPte(123456, false)), 123456u);
  EXPECT_EQ(PtePayload(MakeRemotePte(0xFFFFFFFF)), 0xFFFFFFFFu);
  EXPECT_EQ(PtePayload(MakeFetchingPte(7)), 7u);
  EXPECT_EQ(PtePayload(MakeActionPte(0)), 0u);
  EXPECT_EQ(PtePayload(MakeTierPte(0xABCDEF)), 0xABCDEFu);
}

TEST(Pte, TagsUseOnlyLowThreeBitsPlusPayload) {
  // Accessed/dirty bits must not disturb the tag.
  Pte p = MakeLocalPte(9, true) | kPteAccessed | kPteDirty;
  EXPECT_EQ(PteTagOf(p), PteTag::kLocal);
  EXPECT_EQ(PtePayload(p & ~(kPteAccessed | kPteDirty)), 9u);
}

TEST(Pte, TierTagIsDistinctFromEveryOtherState) {
  // kTier is a non-present software state: it must never read as local
  // (mapped), and sticky accessed/dirty bits must not morph it into one.
  Pte t = MakeTierPte(42);
  EXPECT_NE(PteTagOf(t), PteTag::kLocal);
  EXPECT_NE(PteTagOf(t), PteTag::kRemote);
  EXPECT_NE(PteTagOf(t), PteTag::kFetching);
  EXPECT_NE(PteTagOf(t), PteTag::kAction);
  EXPECT_EQ(PteTagOf(t | kPteAccessed | kPteDirty), PteTag::kTier);
}

TEST(PageTable, GetOnEmptyReturnsZero) {
  PageTable pt;
  EXPECT_EQ(pt.Get(0x12345000), 0u);
  EXPECT_EQ(pt.leaf_count(), 0u);
}

TEST(PageTable, EntryWithoutCreateDoesNotMaterialize) {
  PageTable pt;
  EXPECT_EQ(pt.Entry(0x12345000, false), nullptr);
  EXPECT_EQ(pt.leaf_count(), 0u);
}

TEST(PageTable, SetGetRoundTrip) {
  PageTable pt;
  uint64_t va = (1ULL << 40) + 17 * 4096;
  pt.Set(va, MakeRemotePte(99));
  EXPECT_EQ(PteTagOf(pt.Get(va)), PteTag::kRemote);
  EXPECT_EQ(PtePayload(pt.Get(va)), 99u);
  // Offsets within the page resolve to the same PTE.
  EXPECT_EQ(pt.Get(va + 4095), pt.Get(va));
}

TEST(PageTable, DistinctPagesDistinctEntries) {
  PageTable pt;
  uint64_t va = 1ULL << 40;
  pt.Set(va, MakeRemotePte(1));
  pt.Set(va + 4096, MakeRemotePte(2));
  EXPECT_EQ(PtePayload(pt.Get(va)), 1u);
  EXPECT_EQ(PtePayload(pt.Get(va + 4096)), 2u);
}

TEST(PageTable, SharesLeavesWithin2MB) {
  PageTable pt;
  uint64_t base = 1ULL << 40;
  for (int i = 0; i < 512; ++i) {
    pt.Set(base + static_cast<uint64_t>(i) * 4096, MakeRemotePte(static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(pt.leaf_count(), 1u);
  pt.Set(base + 512 * 4096, MakeRemotePte(512));
  EXPECT_EQ(pt.leaf_count(), 2u);
}

TEST(PageTable, CoversFull48BitSpace) {
  PageTable pt;
  uint64_t hi = (1ULL << 47) - 4096;
  pt.Set(hi, MakeLocalPte(3, true));
  EXPECT_EQ(PteTagOf(pt.Get(hi)), PteTag::kLocal);
  EXPECT_EQ(pt.Get(0), 0u);
}

TEST(FramePool, AllocFreeCycle) {
  FramePool pool(4);
  EXPECT_EQ(pool.free_count(), 4u);
  auto a = pool.Alloc();
  auto b = pool.Alloc();
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pool.used(), 2u);
  pool.Free(*a);
  EXPECT_EQ(pool.free_count(), 3u);
}

TEST(FramePool, ExhaustionReturnsNullopt) {
  FramePool pool(2);
  EXPECT_TRUE(pool.Alloc().has_value());
  EXPECT_TRUE(pool.Alloc().has_value());
  EXPECT_FALSE(pool.Alloc().has_value());
}

TEST(FramePool, FramesAreDistinctWritableMemory) {
  FramePool pool(3);
  auto a = pool.Alloc();
  auto b = pool.Alloc();
  pool.Data(*a)[0] = 0x11;
  pool.Data(*b)[0] = 0x22;
  EXPECT_EQ(pool.Data(*a)[0], 0x11);
  EXPECT_EQ(pool.Data(*b)[0], 0x22);
  EXPECT_EQ(pool.Addr(*a), reinterpret_cast<uint64_t>(pool.Data(*a)));
}

TEST(HitTracker, AllHitsGivesRatioOne) {
  PageTable pt;
  HitTracker tracker;
  uint64_t base = 1ULL << 40;
  for (int i = 0; i < 8; ++i) {
    uint64_t va = base + static_cast<uint64_t>(i) * 4096;
    pt.Set(va, MakeLocalPte(static_cast<uint64_t>(i), true) | kPteAccessed);
    tracker.Observe(va);
  }
  tracker.Scan(pt);
  EXPECT_DOUBLE_EQ(tracker.hit_ratio(), 1.0);
  EXPECT_EQ(tracker.scans(), 1u);
  // Scan clears accessed bits.
  EXPECT_EQ(pt.Get(base) & kPteAccessed, 0u);
}

TEST(HitTracker, MissesLowerTheRatio) {
  PageTable pt;
  HitTracker tracker;
  uint64_t base = 1ULL << 40;
  for (int i = 0; i < 8; ++i) {
    uint64_t va = base + static_cast<uint64_t>(i) * 4096;
    // Half the prefetched pages were never touched.
    Pte pte = MakeLocalPte(static_cast<uint64_t>(i), true);
    if (i % 2 == 0) {
      pte |= kPteAccessed;
    }
    pt.Set(va, pte);
    tracker.Observe(va);
  }
  tracker.Scan(pt);
  EXPECT_LT(tracker.hit_ratio(), 1.0);
  EXPECT_GT(tracker.hit_ratio(), 0.5);  // EWMA from initial 1.0 toward 0.5.
}

TEST(HitTracker, WindowIsBounded) {
  HitTracker tracker(4);
  for (int i = 0; i < 100; ++i) {
    tracker.Observe(static_cast<uint64_t>(i) * 4096);
  }
  EXPECT_LE(tracker.tracked_count(), 4u);
}

TEST(HitTracker, ScanOnEmptyWindowIsNoop) {
  PageTable pt;
  HitTracker tracker;
  tracker.Scan(pt);
  EXPECT_EQ(tracker.scans(), 0u);
  EXPECT_DOUBLE_EQ(tracker.hit_ratio(), 1.0);
}

}  // namespace
}  // namespace dilos
