// Tests for the Sec. 5.1 extension features: multi-node sharding,
// replication + memory-node failover, NVMe/SATA far-memory backends, and
// the generic linked-list guide of Fig. 5.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/linked_list.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/fastswap/fastswap.h"
#include "src/guides/list_guide.h"

namespace dilos {
namespace {

TEST(Sharding, PagesSpreadAcrossNodes) {
  Fabric fabric(CostModel::Default(), /*num_nodes=*/4);
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  // Touch 16 MB (64 shards of 256 KB): each node must end up owning pages.
  uint64_t region = rt.AllocRegion(16 << 20);
  for (uint64_t off = 0; off < (16 << 20); off += kPageSize) {
    rt.Write<uint8_t>(region + off, 1);
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(fabric.node(n).store().page_count(), 0u) << "node " << n;
  }
}

TEST(Sharding, DataIntegrityAcrossNodes) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg;
  cfg.local_mem_bytes = 512 * 1024;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 2048;  // 8 MB over 3 nodes.
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p * 7 + 3);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p * 7 + 3) << p;
  }
}

TEST(Sharding, RouterMapsByShardGranule) {
  Fabric fabric(CostModel::Default(), 4);
  ShardRouter router(fabric, 1, 1, false);
  uint64_t base = kFarBase;
  // Same 256 KB granule -> same node, always.
  EXPECT_EQ(router.NodeOf(base), router.NodeOf(base + (256 << 10) - 1));
  // Hash placement spreads granules roughly evenly across nodes.
  std::vector<int> counts(4, 0);
  for (int g = 0; g < 256; ++g) {
    counts[static_cast<size_t>(
        router.NodeOf(base + static_cast<uint64_t>(g) * (256 << 10)))]++;
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(counts[static_cast<size_t>(n)], 256 / 8) << n;
    EXPECT_LT(counts[static_cast<size_t>(n)], 256 / 2) << n;
  }
}

TEST(Replication, WritesFanOutToReplicas) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  cfg.replication = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  // Every written-back page materializes on both nodes.
  EXPECT_GT(fabric.node(0).store().page_count(), 0u);
  EXPECT_GT(fabric.node(1).store().page_count(), 0u);
  // Write bandwidth doubles relative to write-backs.
  EXPECT_GE(rt.stats().bytes_written, rt.stats().writebacks * kPageSize * 2);
}

TEST(Replication, SurvivesMemoryNodeFailure) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  cfg.replication = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0x5A5A);
  }
  // Kill node 0. Every page must still be readable from its replica.
  rt.router().FailNode(0);
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0x5A5A) << p;
  }
  // And the system keeps working for new writes/reads.
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p + 1);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p + 1) << p;
  }
}

TEST(Replication, WithoutReplicationFailureIsVisibleInRouting) {
  Fabric fabric(CostModel::Default(), 2);
  ShardRouter router(fabric, 1, /*replication=*/1, false);
  router.FailNode(0);
  // Find one granule homed on each node.
  uint64_t on_node0 = 0;
  uint64_t on_node1 = 0;
  for (int g = 0; g < 64 && (on_node0 == 0 || on_node1 == 0); ++g) {
    uint64_t va = kFarBase + static_cast<uint64_t>(g) * (2 << 20);
    (router.NodeOf(va) == 0 ? on_node0 : on_node1) = va;
  }
  ASSERT_NE(on_node0, 0u);
  ASSERT_NE(on_node1, 0u);
  // Pages homed on the dead node have no live replica; others resolve.
  EXPECT_EQ(router.ReadQp(0, CommChannel::kFault, on_node0), nullptr);
  EXPECT_NE(router.ReadQp(0, CommChannel::kFault, on_node1), nullptr);
}

TEST(Replication, RecoverNodeRestoresRouting) {
  Fabric fabric(CostModel::Default(), 2);
  ShardRouter router(fabric, 1, 2, false);
  router.FailNode(1);
  EXPECT_FALSE(router.IsLive(1));
  router.RecoverNode(1);
  EXPECT_TRUE(router.IsLive(1));
  std::vector<QueuePair*> qps;
  router.WriteQps(0, CommChannel::kManager, kFarBase, &qps);
  EXPECT_EQ(qps.size(), 2u);
}

TEST(Backends, NvmeSlowerThanRdmaFasterThanSata) {
  auto run = [](const CostModel& cost) {
    Fabric fabric(cost);
    DilosConfig cfg;
    cfg.local_mem_bytes = 32 * 4096;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    const uint64_t pages = 256;
    uint64_t region = rt.AllocRegion(pages * kPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Write<uint8_t>(region + p * kPageSize, 1);
    }
    uint64_t t0 = rt.clock().now();
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Read<uint8_t>(region + p * kPageSize);
    }
    return rt.clock().now() - t0;
  };
  uint64_t rdma = run(CostModel::Default());
  uint64_t nvme = run(CostModel::Nvme());
  uint64_t sata = run(CostModel::SataSsd());
  EXPECT_GT(nvme, rdma * 2);
  EXPECT_GT(sata, nvme * 4);
}

TEST(Backends, SoftwareSavingsShrinkAsDeviceSlows) {
  // The Sec. 5.1 claim: with slow block devices, IO dominates and DiLOS'
  // software savings wash out; with NVMe they still matter.
  auto ratio = [](const CostModel& cost) {
    auto run = [&](bool dilos) {
      Fabric fabric(cost);
      std::unique_ptr<FarRuntime> rt;
      if (dilos) {
        DilosConfig cfg;
        cfg.local_mem_bytes = 32 * 4096;
        rt = std::make_unique<DilosRuntime>(fabric, cfg, std::make_unique<NullPrefetcher>());
      } else {
        FastswapConfig cfg;
        cfg.local_mem_bytes = 32 * 4096;
        cfg.readahead_enabled = false;
        rt = std::make_unique<FastswapRuntime>(fabric, cfg);
      }
      const uint64_t pages = 256;
      uint64_t region = rt->AllocRegion(pages * kPageSize);
      for (uint64_t p = 0; p < pages; ++p) {
        rt->Write<uint8_t>(region + p * kPageSize, 1);
      }
      uint64_t t0 = rt->clock().now();
      for (uint64_t p = 0; p < pages; ++p) {
        rt->Read<uint8_t>(region + p * kPageSize);
      }
      return rt->clock().now() - t0;
    };
    return static_cast<double>(run(false)) / static_cast<double>(run(true));
  };
  double rdma_gain = ratio(CostModel::Default());
  double sata_gain = ratio(CostModel::SataSsd());
  EXPECT_GT(rdma_gain, 1.5);  // Big win over RDMA.
  EXPECT_LT(sata_gain, 1.2);  // Washes out when the device dominates.
  EXPECT_LT(sata_gain, rdma_gain);
}

TEST(ListGuide, TraversalCorrectWithAndWithoutGuide) {
  for (bool guided : {false, true}) {
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = 64 * 4096;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    LinkedListWorkload list(rt, 512);
    ListGuide guide(kListNextOffset);
    if (guided) {
      rt.set_guide(&guide);
    }
    auto res = list.Traverse([&](uint64_t node) { guide.OnVisit(node); });
    EXPECT_EQ(res.nodes, 512u);
    EXPECT_EQ(res.sum, list.expected_sum());
    if (guided) {
      EXPECT_GT(guide.hops(), 0u);
    }
  }
}

TEST(ListGuide, BeatsHistoryBasedPrefetchOnPointerChase) {
  auto run = [](int mode) {  // 0 none, 1 readahead, 2 guide.
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = 64 * 4096;  // 12.5% of the 512-page list.
    std::unique_ptr<Prefetcher> pf;
    if (mode == 1) {
      pf = std::make_unique<ReadaheadPrefetcher>();
    } else {
      pf = std::make_unique<NullPrefetcher>();
    }
    DilosRuntime rt(fabric, cfg, std::move(pf));
    LinkedListWorkload list(rt, 512);
    ListGuide guide(kListNextOffset);
    if (mode == 2) {
      rt.set_guide(&guide);
    }
    auto res = list.Traverse([&](uint64_t node) { guide.OnVisit(node); });
    EXPECT_EQ(res.sum, list.expected_sum());
    return res.elapsed_ns;
  };
  uint64_t none = run(0);
  uint64_t readahead = run(1);
  uint64_t guided = run(2);
  EXPECT_LT(guided, none * 3 / 4);       // The guide overlaps the chain.
  EXPECT_GT(readahead, none * 3 / 4);    // History prefetch gains ~nothing.
}

}  // namespace
}  // namespace dilos
