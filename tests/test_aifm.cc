// Tests for the AIFM baseline: object lifecycle, deref-check overhead,
// evacuation under pressure, streaming prefetch, and the ported apps.
#include <gtest/gtest.h>

#include <cstring>

#include "src/aifm/aifm.h"
#include "src/aifm/aifm_apps.h"

namespace dilos {
namespace {

TEST(Aifm, AllocateZeroed) {
  Fabric fabric;
  AifmRuntime rt(fabric, {});
  ObjId id = rt.Allocate(128);
  const uint8_t* p = rt.Deref(id, false);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(p[i], 0);
  }
}

TEST(Aifm, DataSurvivesEvacuation) {
  Fabric fabric;
  AifmConfig cfg;
  cfg.local_mem_bytes = 16 * 1024;  // Tiny budget: constant evacuation.
  AifmRuntime rt(fabric, cfg);
  std::vector<ObjId> ids;
  for (uint64_t i = 0; i < 64; ++i) {
    ObjId id = rt.Allocate(1024);
    rt.Write<uint64_t>(id, i * 7 + 1);
    ids.push_back(id);
  }
  EXPECT_GT(rt.stats().evictions, 0u);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rt.Read<uint64_t>(ids[i]), i * 7 + 1) << i;
  }
}

TEST(Aifm, DerefChargesCheckCost) {
  Fabric fabric;
  AifmConfig cfg;
  cfg.deref_check_ns = 10;
  AifmRuntime rt(fabric, cfg);
  ObjId id = rt.Allocate(64);
  uint64_t t0 = rt.clock().now();
  for (int i = 0; i < 100; ++i) {
    rt.Deref(id, false);
  }
  // 100 local derefs: at least 100 * (check + pin).
  EXPECT_GE(rt.clock().now() - t0, 100 * 10u);
}

TEST(Aifm, RemoteMissWaitsTcpLatency) {
  Fabric fabric;
  AifmConfig cfg;
  cfg.local_mem_bytes = 8 * 1024;
  AifmRuntime rt(fabric, cfg);
  std::vector<ObjId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(rt.Allocate(1024));
    rt.Write<uint8_t>(ids.back(), 1);
  }
  // ids[0] has been evacuated. A miss costs fabric + TCP delay.
  uint64_t t0 = rt.clock().now();
  rt.Deref(ids[0], false);
  uint64_t miss_ns = rt.clock().now() - t0;
  EXPECT_GT(miss_ns, CostModel::Default().tcp_delay_ns);
}

TEST(Aifm, StreamingPrefetchOverlapsSequentialScan) {
  // Sequential scan over evicted objects: with the streaming prefetcher the
  // per-object stall collapses after the ramp-up.
  Fabric fabric;
  AifmConfig cfg;
  cfg.local_mem_bytes = 64 * 1024;
  AifmRuntime rt(fabric, cfg);
  const int kObjs = 256;
  std::vector<ObjId> ids;
  for (int i = 0; i < kObjs; ++i) {
    ids.push_back(rt.Allocate(4096));
    rt.Write<uint32_t>(ids.back(), static_cast<uint32_t>(i));
  }
  uint64_t t0 = rt.clock().now();
  for (int i = 0; i < kObjs; ++i) {
    EXPECT_EQ(rt.Read<uint32_t>(ids[static_cast<size_t>(i)]), static_cast<uint32_t>(i));
  }
  uint64_t scan_ns = rt.clock().now() - t0;
  EXPECT_GT(rt.stats().prefetch_issued, 0u);
  // Without overlap every object would stall the full TCP RTT (~8.5 us);
  // streaming must bring the mean per-object cost well under half of that.
  double per_obj = static_cast<double>(scan_ns) / kObjs;
  EXPECT_LT(per_obj, 4000.0);
}

TEST(Aifm, FreeReleasesLocalBudget) {
  Fabric fabric;
  AifmRuntime rt(fabric, {});
  ObjId id = rt.Allocate(4096);
  uint64_t before = rt.local_bytes();
  rt.FreeObj(id);
  EXPECT_EQ(rt.local_bytes(), before - 4096);
}

TEST(AifmSzip, CompressDecompressRoundTrip) {
  Fabric fabric;
  AifmConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  AifmRuntime rt(fabric, cfg);
  AifmSzipWorkload wl(rt, 512 * 1024);
  SzipResult c = wl.Compress();
  EXPECT_EQ(c.in_bytes, 512u * 1024);
  EXPECT_LT(c.out_bytes, c.in_bytes);  // The content is compressible.
  SzipResult d = wl.Decompress();
  EXPECT_EQ(d.out_bytes, c.in_bytes);  // Exact reconstruction size.
}

TEST(AifmTaxi, ProducesSaneStatistics) {
  Fabric fabric;
  AifmConfig cfg;
  cfg.local_mem_bytes = 4 << 20;
  AifmRuntime rt(fabric, cfg);
  AifmTaxiWorkload wl(rt, 20000);
  AifmTaxiResult res = wl.Run();
  EXPECT_GT(res.elapsed_ns, 0u);
  EXPECT_GT(res.mean_fare, 2.5);
  EXPECT_GT(res.fare_distance_corr, 0.9);  // Fare is nearly linear in distance.
  EXPECT_GT(res.long_trips, 0u);
  EXPECT_LT(res.long_trips, 20000u / 2);
}

}  // namespace
}  // namespace dilos
