// Unit tests for the simulation substrate: clock, cost model, stats, RNG.
#include <gtest/gtest.h>

#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace dilos {
namespace {

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.now(), 100u);
}

TEST(Clock, AdvanceToOnlyMovesForward) {
  Clock c;
  c.Advance(500);
  EXPECT_EQ(c.AdvanceTo(300), 0u);  // Past target: no-op.
  EXPECT_EQ(c.now(), 500u);
  EXPECT_EQ(c.AdvanceTo(800), 300u);
  EXPECT_EQ(c.now(), 800u);
}

TEST(Clock, ResetReturnsToZero) {
  Clock c;
  c.Advance(42);
  c.Reset();
  EXPECT_EQ(c.now(), 0u);
}

TEST(CostModel, ReadLatencyMatchesPaperFig2) {
  CostModel m = CostModel::Default();
  // Fig. 2: ~1.8 us for 128 B, ~2.4 us for 4 KB; the 4 KB read costs only
  // ~0.6 us more than the 128 B read.
  uint64_t small = m.ReadLatencyNs(128);
  uint64_t page = m.ReadLatencyNs(4096);
  EXPECT_NEAR(static_cast<double>(small), 1800.0, 150.0);
  EXPECT_NEAR(static_cast<double>(page), 2400.0, 150.0);
  EXPECT_NEAR(static_cast<double>(page - small), 600.0, 80.0);
}

TEST(CostModel, WriteCheaperThanRead) {
  CostModel m = CostModel::Default();
  EXPECT_LT(m.WriteLatencyNs(4096), m.ReadLatencyNs(4096));
}

TEST(CostModel, LatencyMonotonicInSize) {
  CostModel m = CostModel::Default();
  uint64_t prev = 0;
  for (uint64_t sz = 64; sz <= 4096; sz *= 2) {
    uint64_t lat = m.ReadLatencyNs(sz);
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST(CostModel, VectorPenaltyKicksInPastThreeSegments) {
  CostModel m = CostModel::Default();
  uint64_t three = m.ReadLatencyNs(1024, 3);
  uint64_t four = m.ReadLatencyNs(1024, 4);
  // Going 3 -> 4 segments costs more than the ordinary per-segment step.
  EXPECT_GT(four - three, m.rdma_per_seg_ns);
}

TEST(LatencyBreakdown, MeansAndTotals) {
  LatencyBreakdown bd;
  bd.CountEvent();
  bd.Add(LatComp::kFetch, 2000);
  bd.Add(LatComp::kMap, 100);
  bd.CountEvent();
  bd.Add(LatComp::kFetch, 3000);
  EXPECT_DOUBLE_EQ(bd.MeanNs(LatComp::kFetch), 2500.0);
  EXPECT_DOUBLE_EQ(bd.MeanNs(LatComp::kMap), 50.0);
  EXPECT_DOUBLE_EQ(bd.TotalMeanNs(), 2550.0);
  EXPECT_EQ(bd.events(), 2u);
}

TEST(LatencyBreakdown, ResetClears) {
  LatencyBreakdown bd;
  bd.CountEvent();
  bd.Add(LatComp::kFetch, 100);
  bd.Reset();
  EXPECT_EQ(bd.events(), 0u);
  EXPECT_EQ(bd.total_ns(LatComp::kFetch), 0u);
}

TEST(PercentileRecorder, ExactPercentiles) {
  PercentileRecorder r;
  for (uint64_t i = 1; i <= 100; ++i) {
    r.Record(i);
  }
  EXPECT_EQ(r.Percentile(0), 1u);
  EXPECT_EQ(r.Percentile(100), 100u);
  EXPECT_NEAR(static_cast<double>(r.Percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(r.Percentile(99)), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(r.MeanNs(), 50.5);
  EXPECT_EQ(r.MaxNs(), 100u);
}

TEST(PercentileRecorder, EmptyIsZero) {
  PercentileRecorder r;
  EXPECT_EQ(r.Percentile(99), 0u);
  EXPECT_EQ(r.MaxNs(), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfSampler z(1000, 0.99, 11);
  std::vector<uint64_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = z.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 must dominate a mid-rank key heavily under theta=0.99.
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(RuntimeStats, TotalsAndToString) {
  RuntimeStats s;
  s.major_faults = 3;
  s.minor_faults = 4;
  s.zero_fill_faults = 5;
  EXPECT_EQ(s.total_faults(), 12u);
  EXPECT_NE(s.ToString().find("major=3"), std::string::npos);
  s.Reset();
  EXPECT_EQ(s.total_faults(), 0u);
}

}  // namespace
}  // namespace dilos
