// Tests for the app-aware guides: GET value prefetching, quicklist
// pointer-chasing, and allocator-guided (vectorized) paging.
#include <gtest/gtest.h>

#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/guides/allocator_guide.h"
#include "src/guides/redis_guide.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace dilos {
namespace {

struct Env {
  Fabric fabric;
  std::unique_ptr<DilosRuntime> rt;
  std::unique_ptr<RedisLite> redis;

  Env(uint64_t local_bytes, std::unique_ptr<Prefetcher> pf) {
    DilosConfig cfg;
    cfg.local_mem_bytes = local_bytes;
    rt = std::make_unique<DilosRuntime>(fabric, cfg, std::move(pf));
    redis = std::make_unique<RedisLite>(*rt, 1 << 12);
  }
};

TEST(RedisGuideGet, PrefetchesValuePagesAndStaysCorrect) {
  Env s(2 << 20, std::make_unique<NullPrefetcher>());
  RedisGuide guide;
  s.redis->set_hooks(&guide);
  s.rt->set_guide(&guide);

  RedisBench bench(*s.redis);
  bench.PopulateStrings(256, {65536});  // 16 MB of 64 KB values, 2 MB local.
  RedisBenchResult res = bench.RunGet(100);
  EXPECT_EQ(res.ops, 100u);
  EXPECT_GT(guide.value_prefetches(), 0u);
  EXPECT_GT(s.rt->stats().subpage_fetches, 0u);
  EXPECT_GT(s.rt->stats().prefetch_issued, 0u);
}

TEST(RedisGuideGet, FasterThanNoPrefetchOnLargeValues) {
  // 64 KB values: the guide fetches the exact pages right away, while
  // no-prefetch faults 16 times per value.
  auto run = [](bool with_guide) {
    Env s(2 << 20, std::make_unique<NullPrefetcher>());
    RedisGuide guide;
    if (with_guide) {
      s.redis->set_hooks(&guide);
      s.rt->set_guide(&guide);
    }
    RedisBench bench(*s.redis);
    bench.PopulateStrings(256, {65536});
    return bench.RunGet(200).OpsPerSec();
  };
  double plain = run(false);
  double guided = run(true);
  EXPECT_GT(guided, plain * 1.3);
}

TEST(RedisGuideLrange, ChasesQuicklistAndStaysCorrect) {
  Env s(1 << 20, std::make_unique<NullPrefetcher>());
  RedisGuide guide;
  s.redis->set_hooks(&guide);
  s.rt->set_guide(&guide);

  RedisBench bench(*s.redis);
  bench.PopulateLists(128, 128 * 200, 90);  // ~2.3 MB of list data, 1 MB local.
  RedisBenchResult res = bench.RunLrange(100);
  EXPECT_EQ(res.ops, 100u);
  EXPECT_GT(guide.chases(), 0u);
}

TEST(RedisGuideLrange, BeatsGeneralPurposePrefetchers) {
  // Paper Fig. 10(d): readahead gains nothing on LRANGE; the app-aware
  // guide wins by chasing pointers.
  auto run = [](int mode) {  // 0 = none, 1 = readahead, 2 = guide.
    std::unique_ptr<Prefetcher> pf;
    if (mode == 1) {
      pf = std::make_unique<ReadaheadPrefetcher>();
    } else {
      pf = std::make_unique<NullPrefetcher>();
    }
    Env s(1 << 20, std::move(pf));
    RedisGuide guide;
    if (mode == 2) {
      s.redis->set_hooks(&guide);
      s.rt->set_guide(&guide);
    }
    RedisBench bench(*s.redis);
    bench.PopulateLists(128, 128 * 200, 90);
    return bench.RunLrange(150).OpsPerSec();
  };
  double none = run(0);
  double ra = run(1);
  double guided = run(2);
  EXPECT_GT(guided, none * 1.2);          // The paper reports +62%.
  EXPECT_LT(ra, none * 1.35);             // Readahead ~no better than none.
  EXPECT_GT(guided, ra);
}

TEST(AllocatorGuide, VectorizedEvictionRoundTrips) {
  Env s(256 * 1024, std::make_unique<NullPrefetcher>());
  FarHeap& heap = s.redis->heap();
  AllocatorGuide guide(heap);
  s.rt->set_guide(&guide);

  // Allocate many small chunks, free most, then force eviction + refetch.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 20000; ++i) {
    uint64_t a = heap.Malloc(128);
    s.rt->Write<uint64_t>(a, static_cast<uint64_t>(i) * 13 + 1);
    addrs.push_back(a);
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 4 != 0) {
      heap.Free(addrs[i]);
      addrs[i] = 0;
    }
  }
  // Sweep something else to evict the heap pages.
  uint64_t filler = s.rt->AllocRegion(512 * 4096);
  for (int p = 0; p < 512; ++p) {
    s.rt->Write<uint8_t>(filler + static_cast<uint64_t>(p) * 4096, 1);
  }
  // Live chunks must read back exactly through action-PTE refetches.
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] != 0) {
      ASSERT_EQ(s.rt->Read<uint64_t>(addrs[i]), static_cast<uint64_t>(i) * 13 + 1) << i;
    }
  }
  EXPECT_GT(s.rt->stats().vectored_ops, 0u);
}

TEST(AllocatorGuide, ReducesFetchBandwidth) {
  // Same workload with and without the guide: guided paging must move
  // fewer bytes (paper Fig. 12: -29% on GET).
  auto run = [](bool guided) {
    Env s(512 * 1024, std::make_unique<NullPrefetcher>());
    FarHeap& heap = s.redis->heap();
    AllocatorGuide guide(heap);
    if (guided) {
      s.rt->set_guide(&guide);
    }
    std::vector<uint64_t> addrs;
    for (int i = 0; i < 30000; ++i) {
      uint64_t a = heap.Malloc(128);
      s.rt->Write<uint32_t>(a, static_cast<uint32_t>(i));
      addrs.push_back(a);
    }
    for (size_t i = 0; i < addrs.size(); ++i) {
      if (i % 8 != 0) {
        heap.Free(addrs[i]);  // 87.5% of chunks die.
      }
    }
    s.rt->stats().bytes_fetched = 0;
    // Random-ish GET-like sweep over survivors (every 8th).
    for (size_t rep = 0; rep < 2; ++rep) {
      for (size_t i = 0; i < addrs.size(); i += 8) {
        s.rt->Read<uint32_t>(addrs[i]);
      }
    }
    return s.rt->stats().bytes_fetched;
  };
  uint64_t plain = run(false);
  uint64_t guided = run(true);
  EXPECT_LT(guided, plain);
}

TEST(AllocatorGuide, WritebackBytesShrinkForDirtyFragmentedPages) {
  Env s(128 * 1024, std::make_unique<NullPrefetcher>());
  FarHeap& heap = s.redis->heap();
  AllocatorGuide guide(heap);
  s.rt->set_guide(&guide);

  std::vector<uint64_t> addrs;
  for (int i = 0; i < 8000; ++i) {
    uint64_t a = heap.Malloc(128);
    s.rt->Write<uint32_t>(a, 7);
    addrs.push_back(a);
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 16 != 0) {
      heap.Free(addrs[i]);
    }
  }
  uint64_t wb_before = s.rt->stats().bytes_written;
  // Dirty the surviving chunks, then force eviction via a filler sweep.
  for (size_t i = 0; i < addrs.size(); i += 16) {
    s.rt->Write<uint32_t>(addrs[i], 9);
  }
  uint64_t filler = s.rt->AllocRegion(256 * 4096);
  for (int p = 0; p < 256; ++p) {
    s.rt->Write<uint8_t>(filler + static_cast<uint64_t>(p) * 4096, 1);
  }
  uint64_t written = s.rt->stats().bytes_written - wb_before;
  uint64_t vectored = s.rt->stats().vectored_ops;
  EXPECT_GT(vectored, 0u);
  // With 1/16 of chunks live, vectorized write-back moves far less than
  // full pages would (8000/16 live chunks on ~250 pages => ~well under
  // 250 * 4096 bytes of write-back for those pages).
  EXPECT_LT(written, 250ull * 4096 + 256ull * 4096);
}

}  // namespace
}  // namespace dilos
