// Randomized Redis-lite fuzzing against a reference model, under memory
// pressure and with/without the app-aware guide — the store must behave
// exactly like an in-memory map no matter how the pager shuffles its pages.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/guides/redis_guide.h"
#include "src/redis/redis.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

struct FuzzParam {
  uint64_t seed;
  bool guided;
};

class RedisFuzz : public ::testing::TestWithParam<FuzzParam> {
 protected:
  RedisFuzz() {
    DilosConfig cfg;
    cfg.local_mem_bytes = 768 * 1024;  // Tight: constant eviction.
    rt_ = std::make_unique<DilosRuntime>(fabric_, cfg, std::make_unique<ReadaheadPrefetcher>());
    redis_ = std::make_unique<RedisLite>(*rt_, 1 << 10);
    if (GetParam().guided) {
      guide_ = std::make_unique<RedisGuide>(&redis_->heap());
      redis_->set_hooks(guide_.get());
      rt_->set_guide(guide_.get());
    }
  }

  Fabric fabric_;
  std::unique_ptr<DilosRuntime> rt_;
  std::unique_ptr<RedisLite> redis_;
  std::unique_ptr<RedisGuide> guide_;
};

TEST_P(RedisFuzz, StringCommandsMatchReferenceModel) {
  Rng rng(GetParam().seed);
  std::unordered_map<std::string, std::string> model;
  std::string got;
  for (int step = 0; step < 3000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBelow(400));
    double roll = rng.NextDouble();
    if (roll < 0.45) {
      std::string value(16 + rng.NextBelow(3000), '\0');
      for (auto& ch : value) {
        ch = static_cast<char>('a' + rng.NextBelow(26));
      }
      redis_->Set(key, value);
      model[key] = std::move(value);
    } else if (roll < 0.75) {
      bool ok = redis_->Get(key, &got);
      auto it = model.find(key);
      ASSERT_EQ(ok, it != model.end()) << key;
      if (ok) {
        ASSERT_EQ(got, it->second) << key;
      }
    } else {
      bool ok = redis_->Del(key);
      ASSERT_EQ(ok, model.erase(key) > 0) << key;
    }
  }
  EXPECT_EQ(redis_->dict().size(), model.size());
  // Full verification pass.
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(redis_->Get(k, &got)) << k;
    ASSERT_EQ(got, v) << k;
  }
}

TEST_P(RedisFuzz, ListCommandsMatchReferenceModel) {
  Rng rng(GetParam().seed * 31 + 7);
  std::unordered_map<std::string, std::deque<std::string>> model;
  std::vector<std::string> got;
  for (int step = 0; step < 2500; ++step) {
    std::string key = "l" + std::to_string(rng.NextBelow(40));
    double roll = rng.NextDouble();
    if (roll < 0.55) {
      std::string value(8 + rng.NextBelow(120), '\0');
      for (auto& ch : value) {
        ch = static_cast<char>('A' + rng.NextBelow(26));
      }
      redis_->Rpush(key, value);
      model[key].push_back(std::move(value));
    } else if (roll < 0.9) {
      uint32_t start = static_cast<uint32_t>(rng.NextBelow(50));
      uint32_t count = 1 + static_cast<uint32_t>(rng.NextBelow(60));
      got.clear();
      uint32_t n = redis_->Lrange(key, start, count, &got);
      const auto it = model.find(key);
      uint64_t expect =
          it == model.end() || it->second.size() <= start
              ? 0
              : std::min<uint64_t>(count, it->second.size() - start);
      ASSERT_EQ(n, expect) << key << " start=" << start;
      ASSERT_EQ(got.size(), expect);
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], it->second[start + i]) << key << "[" << start + i << "]";
      }
    } else {
      bool ok = redis_->Del(key);
      ASSERT_EQ(ok, model.erase(key) > 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Runs, RedisFuzz,
                         ::testing::Values(FuzzParam{11, false}, FuzzParam{12, false},
                                           FuzzParam{13, true}, FuzzParam{14, true},
                                           FuzzParam{15, true}));

}  // namespace
}  // namespace dilos
