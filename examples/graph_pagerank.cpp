// Multi-threaded graph processing on far memory: PageRank and betweenness
// centrality over an R-MAT graph whose CSR lives on the memory node, run on
// 4 simulated cores.
//
//   $ ./build/examples/graph_pagerank
#include <cstdio>
#include <memory>

#include "src/apps/graph.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fabric.h"

int main() {
  using namespace dilos;
  const uint64_t kVertices = 1 << 15;
  const uint64_t kDegree = 12;

  auto edges = FarGraph::Rmat(kVertices, kDegree, 4);
  std::printf("R-MAT graph: %llu vertices, %zu edges\n",
              static_cast<unsigned long long>(kVertices), edges.size());

  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 2 << 20;  // Far smaller than the graph.
  cfg.num_cores = 4;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  FarGraph in_csr(rt, kVertices, FarGraph::Transpose(edges));
  PageRankResult pr = RunPageRank(in_csr, FarGraph::OutDegrees(kVertices, edges), 5);
  std::printf("PageRank: %u iterations in %.3f s (simulated), sum=%.4f\n", pr.iterations,
              static_cast<double>(pr.elapsed_ns) / 1e9, pr.sum);
  std::printf("top ranks:");
  for (double r : pr.top_ranks) {
    std::printf(" %.5f", r);
  }
  std::printf("\n");

  FarGraph out_csr(rt, kVertices, edges);
  BcResult bc = RunBetweennessCentrality(out_csr, 4);
  std::printf("Betweenness centrality: %u sources in %.3f s, max=%.1f\n", bc.sources,
              static_cast<double>(bc.elapsed_ns) / 1e9, bc.max_centrality);

  std::printf("\nfaults: %llu major, %llu minor; fetched %.1f MB over the fabric\n",
              static_cast<unsigned long long>(rt.stats().major_faults),
              static_cast<unsigned long long>(rt.stats().minor_faults),
              static_cast<double>(rt.stats().bytes_fetched) / 1e6);
  return 0;
}
