// Data-analytics example: the NYC-taxi-style DataFrame pipeline running
// unmodified on two different far-memory runtimes (DiLOS and the Fastswap
// baseline) — the paper's compatibility claim in action: the application
// never mentions remote memory.
//
//   $ ./build/examples/taxi_analytics
#include <cstdio>
#include <memory>

#include "src/apps/dataframe.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/fastswap/fastswap.h"
#include "src/memnode/fabric.h"

namespace {

void Report(const char* system, const dilos::TaxiAnalysisResult& res) {
  std::printf("--- %s: completed in %.3f s (simulated) ---\n", system,
              static_cast<double>(res.elapsed_ns) / 1e9);
  std::printf("  trips > 10 miles:      %llu\n",
              static_cast<unsigned long long>(res.long_trips));
  std::printf("  mean fare:             $%.2f\n", res.mean_fare);
  std::printf("  corr(fare, distance):  %.3f\n", res.fare_distance_corr);
  std::printf("  mean duration 9am/3am: %.1f / %.1f min\n", res.duration_by_hour[9],
              res.duration_by_hour[3]);
  std::printf("  top fare:              $%.2f\n\n", res.top_fares.front());
}

}  // namespace

int main() {
  using namespace dilos;
  const uint64_t kRows = 300'000;
  const uint64_t kLocal = 3 << 20;  // ~25% of the table.

  {
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = kLocal;
    DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
    FarDataFrame df(rt, kRows);
    TaxiColumns cols = GenerateTaxi(df);
    Report("DiLOS (readahead)", RunTaxiAnalysis(df, cols));
  }
  {
    Fabric fabric;
    FastswapConfig cfg;
    cfg.local_mem_bytes = kLocal;
    FastswapRuntime rt(fabric, cfg);
    FarDataFrame df(rt, kRows);
    TaxiColumns cols = GenerateTaxi(df);
    Report("Fastswap", RunTaxiAnalysis(df, cols));
  }
  std::printf("same application code, same answers, different paging systems.\n");
  return 0;
}
