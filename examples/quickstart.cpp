// Quickstart: bring up a DiLOS compute node against a simulated memory
// node, allocate disaggregated memory, touch it, and watch what the paging
// subsystem did.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "src/apps/seqrw.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fabric.h"

int main() {
  using namespace dilos;

  // The testbed: a compute node and a memory node joined by a simulated
  // 100 GbE RDMA link.
  Fabric fabric;

  // A DiLOS LibOS instance with 4 MB of local DRAM and the readahead
  // prefetcher. Applications see ordinary memory; pages migrate underneath.
  DilosConfig cfg;
  cfg.local_mem_bytes = 4 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  // ddc_mmap 32 MB of disaggregated memory — 8x the local DRAM.
  const uint64_t kBytes = 32 << 20;
  uint64_t region = rt.AllocRegion(kBytes);
  std::printf("allocated %llu MB of far memory at 0x%llx (local DRAM: %llu MB)\n",
              static_cast<unsigned long long>(kBytes >> 20),
              static_cast<unsigned long long>(region),
              static_cast<unsigned long long>(cfg.local_mem_bytes >> 20));

  // Write then read it back: the write populates (zero-fill + eviction to
  // the memory node), the read streams it back through the fault handler
  // and prefetcher.
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    rt.Write<uint64_t>(region + off, off * 2654435761ULL);
  }
  uint64_t checksum = 0;
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    checksum ^= rt.Read<uint64_t>(region + off);
  }
  std::printf("checksum 0x%llx, simulated time %.2f ms\n",
              static_cast<unsigned long long>(checksum),
              static_cast<double>(rt.clock().now()) / 1e6);

  // ToString() includes the per-major-fault latency breakdown.
  std::printf("\npaging activity:\n%s", rt.stats().ToString().c_str());
  return 0;
}
