// Fault tolerance across memory nodes (the Sec. 5.1 extension): pages are
// sharded over two memory nodes with replication, one node "crashes"
// mid-run, and the application never notices — every page is re-fetched
// from its surviving replica.
//
//   $ ./build/examples/fault_tolerance
#include <cstdio>
#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fabric.h"

int main() {
  using namespace dilos;

  Fabric fabric(CostModel::Default(), /*num_nodes=*/2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 2 << 20;
  cfg.replication = 2;  // Every page lives on both memory nodes.
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  const uint64_t kBytes = 16 << 20;
  uint64_t region = rt.AllocRegion(kBytes);
  std::printf("populating %llu MB across %d memory nodes (replication=%d)...\n",
              static_cast<unsigned long long>(kBytes >> 20), fabric.num_nodes(),
              rt.router().replication());
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    rt.Write<uint64_t>(region + off, off ^ 0xD15C0);
  }
  std::printf("node 0 holds %zu pages, node 1 holds %zu pages\n",
              fabric.node(0).store().page_count(), fabric.node(1).store().page_count());

  std::printf("\n*** memory node 0 crashes ***\n\n");
  rt.router().FailNode(0);

  uint64_t errors = 0;
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    if (rt.Read<uint64_t>(region + off) != (off ^ 0xD15C0)) {
      ++errors;
    }
  }
  std::printf("full verification sweep after the crash: %llu corrupt pages out of %llu\n",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(kBytes / 4096));
  std::printf("faults handled: %llu major, every fetch served by the surviving replica\n",
              static_cast<unsigned long long>(rt.stats().major_faults));
  return errors == 0 ? 0 : 1;
}
