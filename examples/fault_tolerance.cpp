// Fault tolerance with automatic recovery (src/recovery).
//
// Part 1 — replication. Three memory nodes, replication=2, failure detection
// + repair enabled. Node 0 physically crashes (Fabric::CrashNode — nobody
// tells the runtime). The compute side notices on its own: demand fetches
// toward the dead node time out, the failure detector strikes it dead, reads
// fail over to the surviving replica, and the repair manager re-replicates
// every degraded granule onto the third node. Then node 1 crashes too — and
// because repair restored two live replicas everywhere, a full verification
// sweep still reads every value back from the single surviving node.
//
// Part 2 — erasure coding. Six memory nodes, (k=4, m=2) striping instead of
// replication: one data copy plus a 2/4 share of parity (1.5x remote
// capacity instead of 2x). A node crashes and the same sweep stays
// zero-corruption — every lost page is decoded on the fly from the four
// surviving stripe members (degraded reads).
//
//   $ ./build/examples/fault_tolerance
#include <cstdio>
#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fabric.h"

namespace {

// Part 2: (k=4, m=2) erasure coding over six nodes. Returns true if the
// sweep under failure is corruption-free and served by reconstruction.
bool RunErasureCoded() {
  using namespace dilos;

  Fabric fabric(CostModel::Default(), /*num_nodes=*/6);
  DilosConfig cfg;
  cfg.local_mem_bytes = 2 << 20;
  cfg.recovery.enabled = true;
  cfg.ec.enabled = true;  // Replaces replication: k data + m parity granules.
  cfg.ec.k = 4;
  cfg.ec.m = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  const uint64_t kBytes = 16 << 20;
  uint64_t region = rt.AllocRegion(kBytes);
  std::printf("populating %llu MB across %d memory nodes, EC(k=%d, m=%d)...\n",
              static_cast<unsigned long long>(kBytes >> 20), fabric.num_nodes(),
              rt.router().ec().k, rt.router().ec().m);
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    rt.Write<uint64_t>(region + off, off ^ 0xEC0DE);
  }
  size_t stored = 0;
  for (int n = 0; n < fabric.num_nodes(); ++n) {
    stored += fabric.node(n).store().page_count();
  }
  double overhead = static_cast<double>(stored) / static_cast<double>(kBytes / 4096);
  std::printf("  %zu remote pages stored for %llu data pages => %.2fx capacity\n"
              "  (replication=2 would store 2.00x)\n",
              stored, static_cast<unsigned long long>(kBytes / 4096), overhead);

  std::printf("\n*** memory node 1 crashes (undetected) ***\n\n");
  fabric.CrashNode(1);

  uint64_t errors = 0;
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    if (rt.Read<uint64_t>(region + off) != (off ^ 0xEC0DE)) {
      ++errors;
    }
  }
  std::printf("sweep during failure: %llu corrupt pages out of %llu\n",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(kBytes / 4096));
  std::printf("detector: node 1 %s\n",
              rt.router().state(1) == NodeState::kDead ? "declared DEAD" : "still live?!");
  std::printf("degraded reads: %llu (pages decoded from %d surviving stripe members: %llu)\n",
              static_cast<unsigned long long>(rt.stats().ec_degraded_reads),
              rt.router().ec().k,
              static_cast<unsigned long long>(rt.stats().ec_reconstructed_pages));
  std::printf("unrecoverable fetches: %llu\n",
              static_cast<unsigned long long>(rt.stats().failed_fetches));
  return errors == 0 && rt.stats().failed_fetches == 0 &&
         rt.stats().ec_degraded_reads > 0 && rt.router().state(1) == NodeState::kDead;
}

}  // namespace

int main() {
  using namespace dilos;

  Fabric fabric(CostModel::Default(), /*num_nodes=*/3);
  DilosConfig cfg;
  cfg.local_mem_bytes = 2 << 20;
  cfg.replication = 2;       // Every granule lives on two of the three nodes.
  cfg.recovery.enabled = true;  // Detector + repair manager.
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  const uint64_t kBytes = 16 << 20;
  uint64_t region = rt.AllocRegion(kBytes);
  std::printf("populating %llu MB across %d memory nodes (replication=%d)...\n",
              static_cast<unsigned long long>(kBytes >> 20), fabric.num_nodes(),
              rt.router().replication());
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    rt.Write<uint64_t>(region + off, off ^ 0xD15C0);
  }
  for (int n = 0; n < 3; ++n) {
    std::printf("  node %d holds %zu pages\n", n, fabric.node(n).store().page_count());
  }

  std::printf("\n*** memory node 0 crashes (undetected) ***\n\n");
  fabric.CrashNode(0);

  // First sweep: the crash is discovered by the paging path itself — op
  // timeouts strike node 0 dead and every fetch fails over.
  uint64_t errors = 0;
  const uint64_t kSweepPages = kBytes / 4096;
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    if (rt.Read<uint64_t>(region + off) != (off ^ 0xD15C0)) {
      ++errors;
    }
  }
  std::printf("sweep during failure: %llu corrupt pages out of %llu\n",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(kSweepPages));
  std::printf("detector: node 0 %s (op timeouts=%llu, degraded reads=%llu)\n",
              rt.router().state(0) == NodeState::kDead ? "declared DEAD" : "still live?!",
              static_cast<unsigned long long>(rt.stats().op_timeouts),
              static_cast<unsigned long long>(rt.stats().degraded_reads));

  // Let the repair manager finish re-replicating degraded granules onto the
  // surviving third node.
  while (!rt.RecoveryIdle()) {
    rt.DriveRecovery(1'000'000);
  }
  int under_replicated = 0;
  for (uint64_t g : rt.router().written_granules()) {
    if (rt.router().LiveReplicaCount(g << kShardGranuleShift) < 2) {
      ++under_replicated;
    }
  }
  std::printf("repair: %llu granules rebuilt (%llu pages copied), %d still degraded\n",
              static_cast<unsigned long long>(rt.stats().repair_granules),
              static_cast<unsigned long long>(rt.stats().repair_pages), under_replicated);

  std::printf("\n*** memory node 1 crashes too ***\n\n");
  fabric.CrashNode(1);
  rt.DriveRecovery(2'000'000);  // Heartbeats notice even before any read does.
  std::printf("detector: node 1 %s\n",
              rt.router().state(1) == NodeState::kDead ? "declared DEAD" : "still live?!");

  // Final sweep: only node 2 survives, and it must hold everything.
  for (uint64_t off = 0; off < kBytes; off += 4096) {
    if (rt.Read<uint64_t>(region + off) != (off ^ 0xD15C0)) {
      ++errors;
    }
  }
  std::printf("verification sweep after double failure: %llu corrupt pages out of %llu\n",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(kSweepPages));
  std::printf("unrecoverable fetches: %llu\n",
              static_cast<unsigned long long>(rt.stats().failed_fetches));
  bool detected = rt.router().state(0) == NodeState::kDead &&
                  rt.router().state(1) == NodeState::kDead;
  bool replication_ok = errors == 0 && under_replicated == 0 && detected;

  std::printf("\n================ erasure coding ================\n\n");
  bool ec_ok = RunErasureCoded();
  std::printf("\n%s\n", replication_ok && ec_ok ? "all checks passed"
                                                : "CHECKS FAILED");
  return (replication_ok && ec_ok) ? 0 : 1;
}
