// App-aware guides end to end: a Redis-like key-value store on far memory,
// first with a general-purpose prefetcher, then with the app-aware guide
// (SDS-header GET prefetching + quicklist pointer chasing + allocator-
// bitmap guided paging). No change to the store's code — the guide attaches
// through hook points, as the paper's ELF-loader hooks do.
//
//   $ ./build/examples/kv_store_guided
#include <cstdio>
#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/guides/redis_guide.h"
#include "src/memnode/fabric.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace {

struct Result {
  double lrange_ops;
  double get_ops;
  uint64_t bytes_fetched;
};

Result Run(bool app_aware) {
  using namespace dilos;
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 3 << 20;
  DilosRuntime rt(fabric, cfg,
                  app_aware ? std::unique_ptr<Prefetcher>(new NullPrefetcher())
                            : std::unique_ptr<Prefetcher>(new ReadaheadPrefetcher()));
  RedisLite redis(rt, 1 << 14);
  RedisGuide guide(&redis.heap());
  if (app_aware) {
    redis.set_hooks(&guide);
    rt.set_guide(&guide);
  }

  RedisBench bench(redis);
  bench.PopulateLists(256, 256 * 200, 90);
  RedisBenchResult lrange = bench.RunLrange(800);

  bench.PopulateStrings(4096, {1024});
  bench.RunDel(2800);  // Fragment the heap pages.
  uint64_t fetched0 = rt.stats().bytes_fetched;
  RedisBenchResult get = bench.RunGet(2000);

  return {lrange.OpsPerSec(), get.OpsPerSec(), rt.stats().bytes_fetched - fetched0};
}

}  // namespace

int main() {
  Result plain = Run(false);
  Result guided = Run(true);
  std::printf("%-28s %14s %14s\n", "", "readahead", "app-aware");
  std::printf("%-28s %14.0f %14.0f   (+%.0f%%)\n", "LRANGE_100 ops/s", plain.lrange_ops,
              guided.lrange_ops, 100.0 * (guided.lrange_ops / plain.lrange_ops - 1.0));
  std::printf("%-28s %14.0f %14.0f\n", "GET ops/s (fragmented)", plain.get_ops,
              guided.get_ops);
  std::printf("%-28s %14.1f %14.1f   (-%.0f%%)\n", "GET bytes fetched (MB)",
              static_cast<double>(plain.bytes_fetched) / 1e6,
              static_cast<double>(guided.bytes_fetched) / 1e6,
              100.0 * (1.0 - static_cast<double>(guided.bytes_fetched) /
                                 static_cast<double>(plain.bytes_fetched)));
  std::printf("\nguides are third-party modules: the store's code is unmodified.\n");
  return 0;
}
