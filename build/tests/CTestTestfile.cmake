# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rdma[1]_include.cmake")
include("/root/repo/build/tests/test_pt[1]_include.cmake")
include("/root/repo/build/tests/test_dilos_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_fastswap[1]_include.cmake")
include("/root/repo/build/tests/test_ddc_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_aifm[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_redis[1]_include.cmake")
include("/root/repo/build/tests/test_guides[1]_include.cmake")
include("/root/repo/build/tests/test_property_paging[1]_include.cmake")
include("/root/repo/build/tests/test_property_heap[1]_include.cmake")
include("/root/repo/build/tests/test_property_redis[1]_include.cmake")
include("/root/repo/build/tests/test_property_szip[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_units2[1]_include.cmake")
include("/root/repo/build/tests/test_units3[1]_include.cmake")
include("/root/repo/build/tests/test_compat[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_edge[1]_include.cmake")
