# Empty compiler generated dependencies file for test_property_szip.
# This may be replaced when dependencies are built.
