file(REMOVE_RECURSE
  "CMakeFiles/test_property_szip.dir/test_property_szip.cc.o"
  "CMakeFiles/test_property_szip.dir/test_property_szip.cc.o.d"
  "test_property_szip"
  "test_property_szip.pdb"
  "test_property_szip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_szip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
