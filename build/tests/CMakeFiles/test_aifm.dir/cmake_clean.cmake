file(REMOVE_RECURSE
  "CMakeFiles/test_aifm.dir/test_aifm.cc.o"
  "CMakeFiles/test_aifm.dir/test_aifm.cc.o.d"
  "test_aifm"
  "test_aifm.pdb"
  "test_aifm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aifm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
