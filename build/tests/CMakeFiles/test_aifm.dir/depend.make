# Empty dependencies file for test_aifm.
# This may be replaced when dependencies are built.
