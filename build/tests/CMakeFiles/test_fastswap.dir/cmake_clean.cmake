file(REMOVE_RECURSE
  "CMakeFiles/test_fastswap.dir/test_fastswap.cc.o"
  "CMakeFiles/test_fastswap.dir/test_fastswap.cc.o.d"
  "test_fastswap"
  "test_fastswap.pdb"
  "test_fastswap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
