file(REMOVE_RECURSE
  "CMakeFiles/test_units2.dir/test_units2.cc.o"
  "CMakeFiles/test_units2.dir/test_units2.cc.o.d"
  "test_units2"
  "test_units2.pdb"
  "test_units2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_units2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
