file(REMOVE_RECURSE
  "CMakeFiles/test_ddc_alloc.dir/test_ddc_alloc.cc.o"
  "CMakeFiles/test_ddc_alloc.dir/test_ddc_alloc.cc.o.d"
  "test_ddc_alloc"
  "test_ddc_alloc.pdb"
  "test_ddc_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
