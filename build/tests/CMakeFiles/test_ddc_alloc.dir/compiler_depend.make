# Empty compiler generated dependencies file for test_ddc_alloc.
# This may be replaced when dependencies are built.
