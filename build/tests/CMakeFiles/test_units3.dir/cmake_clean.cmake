file(REMOVE_RECURSE
  "CMakeFiles/test_units3.dir/test_units3.cc.o"
  "CMakeFiles/test_units3.dir/test_units3.cc.o.d"
  "test_units3"
  "test_units3.pdb"
  "test_units3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_units3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
