# Empty dependencies file for test_units3.
# This may be replaced when dependencies are built.
