# Empty dependencies file for test_redis.
# This may be replaced when dependencies are built.
