file(REMOVE_RECURSE
  "CMakeFiles/test_redis.dir/test_redis.cc.o"
  "CMakeFiles/test_redis.dir/test_redis.cc.o.d"
  "test_redis"
  "test_redis.pdb"
  "test_redis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
