file(REMOVE_RECURSE
  "CMakeFiles/test_dilos_runtime.dir/test_dilos_runtime.cc.o"
  "CMakeFiles/test_dilos_runtime.dir/test_dilos_runtime.cc.o.d"
  "test_dilos_runtime"
  "test_dilos_runtime.pdb"
  "test_dilos_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dilos_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
