# Empty compiler generated dependencies file for test_dilos_runtime.
# This may be replaced when dependencies are built.
