# Empty compiler generated dependencies file for test_property_redis.
# This may be replaced when dependencies are built.
