file(REMOVE_RECURSE
  "CMakeFiles/test_property_redis.dir/test_property_redis.cc.o"
  "CMakeFiles/test_property_redis.dir/test_property_redis.cc.o.d"
  "test_property_redis"
  "test_property_redis.pdb"
  "test_property_redis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
