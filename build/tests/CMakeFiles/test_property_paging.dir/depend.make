# Empty dependencies file for test_property_paging.
# This may be replaced when dependencies are built.
