file(REMOVE_RECURSE
  "CMakeFiles/test_property_paging.dir/test_property_paging.cc.o"
  "CMakeFiles/test_property_paging.dir/test_property_paging.cc.o.d"
  "test_property_paging"
  "test_property_paging.pdb"
  "test_property_paging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
