
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pt.cc" "tests/CMakeFiles/test_pt.dir/test_pt.cc.o" "gcc" "tests/CMakeFiles/test_pt.dir/test_pt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pt/CMakeFiles/dilos_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dilos_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dilos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
