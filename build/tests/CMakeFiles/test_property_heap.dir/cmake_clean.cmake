file(REMOVE_RECURSE
  "CMakeFiles/test_property_heap.dir/test_property_heap.cc.o"
  "CMakeFiles/test_property_heap.dir/test_property_heap.cc.o.d"
  "test_property_heap"
  "test_property_heap.pdb"
  "test_property_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
