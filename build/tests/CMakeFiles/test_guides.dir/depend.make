# Empty dependencies file for test_guides.
# This may be replaced when dependencies are built.
