file(REMOVE_RECURSE
  "CMakeFiles/test_guides.dir/test_guides.cc.o"
  "CMakeFiles/test_guides.dir/test_guides.cc.o.d"
  "test_guides"
  "test_guides.pdb"
  "test_guides[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
