# Empty dependencies file for bench_fig10_redis_lrange.
# This may be replaced when dependencies are built.
