file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_redis_lrange.dir/bench_fig10_redis_lrange.cc.o"
  "CMakeFiles/bench_fig10_redis_lrange.dir/bench_fig10_redis_lrange.cc.o.d"
  "bench_fig10_redis_lrange"
  "bench_fig10_redis_lrange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_redis_lrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
