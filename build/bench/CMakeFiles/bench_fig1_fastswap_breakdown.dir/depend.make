# Empty dependencies file for bench_fig1_fastswap_breakdown.
# This may be replaced when dependencies are built.
