file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hol.dir/bench_ablation_hol.cc.o"
  "CMakeFiles/bench_ablation_hol.dir/bench_ablation_hol.cc.o.d"
  "bench_ablation_hol"
  "bench_ablation_hol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
