# Empty compiler generated dependencies file for bench_ablation_hol.
# This may be replaced when dependencies are built.
