file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fastswap_faults.dir/bench_table1_fastswap_faults.cc.o"
  "CMakeFiles/bench_table1_fastswap_faults.dir/bench_table1_fastswap_faults.cc.o.d"
  "bench_table1_fastswap_faults"
  "bench_table1_fastswap_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fastswap_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
