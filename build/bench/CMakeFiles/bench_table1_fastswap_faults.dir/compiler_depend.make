# Empty compiler generated dependencies file for bench_table1_fastswap_faults.
# This may be replaced when dependencies are built.
