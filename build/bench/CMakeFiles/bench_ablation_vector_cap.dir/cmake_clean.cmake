file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vector_cap.dir/bench_ablation_vector_cap.cc.o"
  "CMakeFiles/bench_ablation_vector_cap.dir/bench_ablation_vector_cap.cc.o.d"
  "bench_ablation_vector_cap"
  "bench_ablation_vector_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vector_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
