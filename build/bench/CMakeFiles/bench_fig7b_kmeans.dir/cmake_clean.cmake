file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_kmeans.dir/bench_fig7b_kmeans.cc.o"
  "CMakeFiles/bench_fig7b_kmeans.dir/bench_fig7b_kmeans.cc.o.d"
  "bench_fig7b_kmeans"
  "bench_fig7b_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
