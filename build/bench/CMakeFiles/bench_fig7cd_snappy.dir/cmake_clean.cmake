file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7cd_snappy.dir/bench_fig7cd_snappy.cc.o"
  "CMakeFiles/bench_fig7cd_snappy.dir/bench_fig7cd_snappy.cc.o.d"
  "bench_fig7cd_snappy"
  "bench_fig7cd_snappy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7cd_snappy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
