# Empty dependencies file for bench_fig7cd_snappy.
# This may be replaced when dependencies are built.
