# Empty compiler generated dependencies file for bench_table2_seq_throughput.
# This may be replaced when dependencies are built.
