file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_seq_throughput.dir/bench_table2_seq_throughput.cc.o"
  "CMakeFiles/bench_table2_seq_throughput.dir/bench_table2_seq_throughput.cc.o.d"
  "bench_table2_seq_throughput"
  "bench_table2_seq_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_seq_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
