file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dataframe.dir/bench_fig8_dataframe.cc.o"
  "CMakeFiles/bench_fig8_dataframe.dir/bench_fig8_dataframe.cc.o.d"
  "bench_fig8_dataframe"
  "bench_fig8_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
