# Empty dependencies file for bench_fig9_gapbs.
# This may be replaced when dependencies are built.
