file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gapbs.dir/bench_fig9_gapbs.cc.o"
  "CMakeFiles/bench_fig9_gapbs.dir/bench_fig9_gapbs.cc.o.d"
  "bench_fig9_gapbs"
  "bench_fig9_gapbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gapbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
