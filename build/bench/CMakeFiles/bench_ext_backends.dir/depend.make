# Empty dependencies file for bench_ext_backends.
# This may be replaced when dependencies are built.
