file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_backends.dir/bench_ext_backends.cc.o"
  "CMakeFiles/bench_ext_backends.dir/bench_ext_backends.cc.o.d"
  "bench_ext_backends"
  "bench_ext_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
