file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_quicksort.dir/bench_fig7a_quicksort.cc.o"
  "CMakeFiles/bench_fig7a_quicksort.dir/bench_fig7a_quicksort.cc.o.d"
  "bench_fig7a_quicksort"
  "bench_fig7a_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
