# Empty compiler generated dependencies file for bench_fig7a_quicksort.
# This may be replaced when dependencies are built.
