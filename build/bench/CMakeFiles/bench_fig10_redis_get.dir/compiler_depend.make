# Empty compiler generated dependencies file for bench_fig10_redis_get.
# This may be replaced when dependencies are built.
