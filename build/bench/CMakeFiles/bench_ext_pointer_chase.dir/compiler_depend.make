# Empty compiler generated dependencies file for bench_ext_pointer_chase.
# This may be replaced when dependencies are built.
