file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pointer_chase.dir/bench_ext_pointer_chase.cc.o"
  "CMakeFiles/bench_ext_pointer_chase.dir/bench_ext_pointer_chase.cc.o.d"
  "bench_ext_pointer_chase"
  "bench_ext_pointer_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pointer_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
