# Empty dependencies file for dilos_pt.
# This may be replaced when dependencies are built.
