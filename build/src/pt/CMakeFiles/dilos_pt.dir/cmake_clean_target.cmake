file(REMOVE_RECURSE
  "libdilos_pt.a"
)
