file(REMOVE_RECURSE
  "CMakeFiles/dilos_pt.dir/page_table.cc.o"
  "CMakeFiles/dilos_pt.dir/page_table.cc.o.d"
  "libdilos_pt.a"
  "libdilos_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
