
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aifm/aifm.cc" "src/aifm/CMakeFiles/dilos_aifm.dir/aifm.cc.o" "gcc" "src/aifm/CMakeFiles/dilos_aifm.dir/aifm.cc.o.d"
  "/root/repo/src/aifm/aifm_apps.cc" "src/aifm/CMakeFiles/dilos_aifm.dir/aifm_apps.cc.o" "gcc" "src/aifm/CMakeFiles/dilos_aifm.dir/aifm_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dilos_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dilos_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
