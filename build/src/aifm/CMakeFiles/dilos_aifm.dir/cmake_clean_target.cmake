file(REMOVE_RECURSE
  "libdilos_aifm.a"
)
