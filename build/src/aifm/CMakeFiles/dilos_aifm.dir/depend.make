# Empty dependencies file for dilos_aifm.
# This may be replaced when dependencies are built.
