file(REMOVE_RECURSE
  "CMakeFiles/dilos_aifm.dir/aifm.cc.o"
  "CMakeFiles/dilos_aifm.dir/aifm.cc.o.d"
  "CMakeFiles/dilos_aifm.dir/aifm_apps.cc.o"
  "CMakeFiles/dilos_aifm.dir/aifm_apps.cc.o.d"
  "libdilos_aifm.a"
  "libdilos_aifm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_aifm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
