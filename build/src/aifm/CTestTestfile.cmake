# CMake generated Testfile for 
# Source directory: /root/repo/src/aifm
# Build directory: /root/repo/build/src/aifm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
