# Empty compiler generated dependencies file for dilos_compat.
# This may be replaced when dependencies are built.
