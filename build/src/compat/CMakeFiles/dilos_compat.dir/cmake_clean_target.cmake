file(REMOVE_RECURSE
  "libdilos_compat.a"
)
