file(REMOVE_RECURSE
  "CMakeFiles/dilos_compat.dir/ddc_api.cc.o"
  "CMakeFiles/dilos_compat.dir/ddc_api.cc.o.d"
  "libdilos_compat.a"
  "libdilos_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
