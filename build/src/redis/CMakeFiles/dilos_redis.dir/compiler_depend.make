# Empty compiler generated dependencies file for dilos_redis.
# This may be replaced when dependencies are built.
