# Empty dependencies file for dilos_redis.
# This may be replaced when dependencies are built.
