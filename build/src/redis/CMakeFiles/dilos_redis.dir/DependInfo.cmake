
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/redis/dict.cc" "src/redis/CMakeFiles/dilos_redis.dir/dict.cc.o" "gcc" "src/redis/CMakeFiles/dilos_redis.dir/dict.cc.o.d"
  "/root/repo/src/redis/redis.cc" "src/redis/CMakeFiles/dilos_redis.dir/redis.cc.o" "gcc" "src/redis/CMakeFiles/dilos_redis.dir/redis.cc.o.d"
  "/root/repo/src/redis/redis_bench.cc" "src/redis/CMakeFiles/dilos_redis.dir/redis_bench.cc.o" "gcc" "src/redis/CMakeFiles/dilos_redis.dir/redis_bench.cc.o.d"
  "/root/repo/src/redis/sds.cc" "src/redis/CMakeFiles/dilos_redis.dir/sds.cc.o" "gcc" "src/redis/CMakeFiles/dilos_redis.dir/sds.cc.o.d"
  "/root/repo/src/redis/ziplist.cc" "src/redis/CMakeFiles/dilos_redis.dir/ziplist.cc.o" "gcc" "src/redis/CMakeFiles/dilos_redis.dir/ziplist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ddc_alloc/CMakeFiles/dilos_ddc_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dilos/CMakeFiles/dilos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/dilos_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dilos_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
