file(REMOVE_RECURSE
  "CMakeFiles/dilos_redis.dir/dict.cc.o"
  "CMakeFiles/dilos_redis.dir/dict.cc.o.d"
  "CMakeFiles/dilos_redis.dir/redis.cc.o"
  "CMakeFiles/dilos_redis.dir/redis.cc.o.d"
  "CMakeFiles/dilos_redis.dir/redis_bench.cc.o"
  "CMakeFiles/dilos_redis.dir/redis_bench.cc.o.d"
  "CMakeFiles/dilos_redis.dir/sds.cc.o"
  "CMakeFiles/dilos_redis.dir/sds.cc.o.d"
  "CMakeFiles/dilos_redis.dir/ziplist.cc.o"
  "CMakeFiles/dilos_redis.dir/ziplist.cc.o.d"
  "libdilos_redis.a"
  "libdilos_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
