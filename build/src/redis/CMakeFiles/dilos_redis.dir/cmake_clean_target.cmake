file(REMOVE_RECURSE
  "libdilos_redis.a"
)
