file(REMOVE_RECURSE
  "libdilos_fastswap.a"
)
