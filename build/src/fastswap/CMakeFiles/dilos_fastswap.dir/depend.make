# Empty dependencies file for dilos_fastswap.
# This may be replaced when dependencies are built.
