file(REMOVE_RECURSE
  "CMakeFiles/dilos_fastswap.dir/fastswap.cc.o"
  "CMakeFiles/dilos_fastswap.dir/fastswap.cc.o.d"
  "libdilos_fastswap.a"
  "libdilos_fastswap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_fastswap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
