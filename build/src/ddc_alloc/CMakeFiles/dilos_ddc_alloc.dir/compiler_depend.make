# Empty compiler generated dependencies file for dilos_ddc_alloc.
# This may be replaced when dependencies are built.
