file(REMOVE_RECURSE
  "libdilos_ddc_alloc.a"
)
