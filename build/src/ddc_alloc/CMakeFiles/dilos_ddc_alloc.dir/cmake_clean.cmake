file(REMOVE_RECURSE
  "CMakeFiles/dilos_ddc_alloc.dir/far_heap.cc.o"
  "CMakeFiles/dilos_ddc_alloc.dir/far_heap.cc.o.d"
  "libdilos_ddc_alloc.a"
  "libdilos_ddc_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_ddc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
