file(REMOVE_RECURSE
  "CMakeFiles/dilos_sim.dir/rng.cc.o"
  "CMakeFiles/dilos_sim.dir/rng.cc.o.d"
  "CMakeFiles/dilos_sim.dir/stats.cc.o"
  "CMakeFiles/dilos_sim.dir/stats.cc.o.d"
  "libdilos_sim.a"
  "libdilos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
