file(REMOVE_RECURSE
  "libdilos_sim.a"
)
