# Empty compiler generated dependencies file for dilos_sim.
# This may be replaced when dependencies are built.
