# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("rdma")
subdirs("memnode")
subdirs("pt")
subdirs("ddc_alloc")
subdirs("dilos")
subdirs("fastswap")
subdirs("aifm")
subdirs("apps")
subdirs("redis")
subdirs("guides")
subdirs("compat")
