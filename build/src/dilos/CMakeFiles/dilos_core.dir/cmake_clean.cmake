file(REMOVE_RECURSE
  "CMakeFiles/dilos_core.dir/page_manager.cc.o"
  "CMakeFiles/dilos_core.dir/page_manager.cc.o.d"
  "CMakeFiles/dilos_core.dir/readahead.cc.o"
  "CMakeFiles/dilos_core.dir/readahead.cc.o.d"
  "CMakeFiles/dilos_core.dir/runtime.cc.o"
  "CMakeFiles/dilos_core.dir/runtime.cc.o.d"
  "CMakeFiles/dilos_core.dir/trend.cc.o"
  "CMakeFiles/dilos_core.dir/trend.cc.o.d"
  "libdilos_core.a"
  "libdilos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
