# Empty dependencies file for dilos_core.
# This may be replaced when dependencies are built.
