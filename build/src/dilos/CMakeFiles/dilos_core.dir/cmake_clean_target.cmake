file(REMOVE_RECURSE
  "libdilos_core.a"
)
