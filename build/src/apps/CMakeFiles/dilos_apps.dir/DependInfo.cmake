
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dataframe.cc" "src/apps/CMakeFiles/dilos_apps.dir/dataframe.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/dataframe.cc.o.d"
  "/root/repo/src/apps/graph.cc" "src/apps/CMakeFiles/dilos_apps.dir/graph.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/graph.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/dilos_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/linked_list.cc" "src/apps/CMakeFiles/dilos_apps.dir/linked_list.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/linked_list.cc.o.d"
  "/root/repo/src/apps/quicksort.cc" "src/apps/CMakeFiles/dilos_apps.dir/quicksort.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/quicksort.cc.o.d"
  "/root/repo/src/apps/seqrw.cc" "src/apps/CMakeFiles/dilos_apps.dir/seqrw.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/seqrw.cc.o.d"
  "/root/repo/src/apps/szip.cc" "src/apps/CMakeFiles/dilos_apps.dir/szip.cc.o" "gcc" "src/apps/CMakeFiles/dilos_apps.dir/szip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/dilos_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
