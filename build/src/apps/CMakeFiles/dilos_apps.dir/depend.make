# Empty dependencies file for dilos_apps.
# This may be replaced when dependencies are built.
