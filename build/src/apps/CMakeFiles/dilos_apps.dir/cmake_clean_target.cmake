file(REMOVE_RECURSE
  "libdilos_apps.a"
)
