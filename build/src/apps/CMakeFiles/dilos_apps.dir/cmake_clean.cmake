file(REMOVE_RECURSE
  "CMakeFiles/dilos_apps.dir/dataframe.cc.o"
  "CMakeFiles/dilos_apps.dir/dataframe.cc.o.d"
  "CMakeFiles/dilos_apps.dir/graph.cc.o"
  "CMakeFiles/dilos_apps.dir/graph.cc.o.d"
  "CMakeFiles/dilos_apps.dir/kmeans.cc.o"
  "CMakeFiles/dilos_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/dilos_apps.dir/linked_list.cc.o"
  "CMakeFiles/dilos_apps.dir/linked_list.cc.o.d"
  "CMakeFiles/dilos_apps.dir/quicksort.cc.o"
  "CMakeFiles/dilos_apps.dir/quicksort.cc.o.d"
  "CMakeFiles/dilos_apps.dir/seqrw.cc.o"
  "CMakeFiles/dilos_apps.dir/seqrw.cc.o.d"
  "CMakeFiles/dilos_apps.dir/szip.cc.o"
  "CMakeFiles/dilos_apps.dir/szip.cc.o.d"
  "libdilos_apps.a"
  "libdilos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
