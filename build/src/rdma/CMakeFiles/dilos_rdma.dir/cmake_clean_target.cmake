file(REMOVE_RECURSE
  "libdilos_rdma.a"
)
