file(REMOVE_RECURSE
  "CMakeFiles/dilos_rdma.dir/queue_pair.cc.o"
  "CMakeFiles/dilos_rdma.dir/queue_pair.cc.o.d"
  "libdilos_rdma.a"
  "libdilos_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
