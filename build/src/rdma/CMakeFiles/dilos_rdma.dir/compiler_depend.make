# Empty compiler generated dependencies file for dilos_rdma.
# This may be replaced when dependencies are built.
