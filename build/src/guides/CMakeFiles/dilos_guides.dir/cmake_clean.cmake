file(REMOVE_RECURSE
  "CMakeFiles/dilos_guides.dir/redis_guide.cc.o"
  "CMakeFiles/dilos_guides.dir/redis_guide.cc.o.d"
  "libdilos_guides.a"
  "libdilos_guides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_guides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
