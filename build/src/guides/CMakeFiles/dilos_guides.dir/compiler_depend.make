# Empty compiler generated dependencies file for dilos_guides.
# This may be replaced when dependencies are built.
