file(REMOVE_RECURSE
  "libdilos_guides.a"
)
