file(REMOVE_RECURSE
  "CMakeFiles/kv_store_guided.dir/kv_store_guided.cpp.o"
  "CMakeFiles/kv_store_guided.dir/kv_store_guided.cpp.o.d"
  "kv_store_guided"
  "kv_store_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
