# Empty compiler generated dependencies file for kv_store_guided.
# This may be replaced when dependencies are built.
