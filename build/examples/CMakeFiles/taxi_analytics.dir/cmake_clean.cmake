file(REMOVE_RECURSE
  "CMakeFiles/taxi_analytics.dir/taxi_analytics.cpp.o"
  "CMakeFiles/taxi_analytics.dir/taxi_analytics.cpp.o.d"
  "taxi_analytics"
  "taxi_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
