# Empty compiler generated dependencies file for dilos_sim_cli.
# This may be replaced when dependencies are built.
