file(REMOVE_RECURSE
  "CMakeFiles/dilos_sim_cli.dir/dilos_sim.cc.o"
  "CMakeFiles/dilos_sim_cli.dir/dilos_sim.cc.o.d"
  "dilos_sim"
  "dilos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dilos_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
